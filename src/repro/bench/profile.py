"""Host-side self-profiling: where does *our* wall time go?

``repro bench profile CASE`` wraps one case execution in
:mod:`cProfile` and answers two questions the simulated-cycle tracer
cannot: which **repro subsystem** (``hw``/``jit``/``gc``/``vm``/
``core``/``harness``/``telemetry``/``lineage``/...) the host CPU time
lands in, and what the hot stacks look like.  The attribution table is
exact (cProfile self time summed per subsystem); the collapsed-stack
export reconstructs full stacks from cProfile's caller→callee edge
times by distributing each callee's profile proportionally along its
incoming edges (the flameprof technique) — an estimate good enough
for a flame graph, emitted in the same ``frame;frame weight`` format
as the simulated-cycle exporter so both feed flamegraph.pl or
speedscope unchanged.
"""

from __future__ import annotations

import cProfile
import os
import sys
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

#: Repro's own top-level packages double as subsystem names; anything
#: else in the package tree (a stray top-level module) counts as core.
_REPRO_MARKER = os.sep + "repro" + os.sep

#: Stacks narrower than this (seconds) are pruned during the walk.
_MIN_STACK_S = 1e-6

#: Depth bound for the proportional stack walk (recursion guard).
_MAX_DEPTH = 64


def subsystem_of(filename: Optional[str]) -> str:
    """Map a frame's filename to a repro subsystem bucket.

    ``repro/<pkg>/...`` maps to ``<pkg>`` (hw, jit, gc, vm, core,
    perfmon, harness, telemetry, lineage, analysis, workloads, bench);
    repro's top-level modules map to ``core``; builtins and frames
    without a file map to ``builtin``; the Python installation's own
    modules map to ``stdlib``; everything else is ``host``.
    """
    if not filename or filename.startswith("<"):
        return "builtin"
    norm = os.path.abspath(filename)
    if _REPRO_MARKER in norm:
        rest = norm.rsplit(_REPRO_MARKER, 1)[1]
        head = rest.split(os.sep, 1)[0]
        return "core" if head.endswith(".py") else head
    prefix = os.path.dirname(os.__file__)
    if norm.startswith(prefix):
        return "stdlib"
    return "host"


def _frame_label(code) -> str:
    """A collapsed-stack frame for one cProfile code object."""
    if isinstance(code, str):  # builtins: "<built-in method ...>"
        label = code.strip("<>")
    else:
        filename = code.co_filename or ""
        norm = os.path.abspath(filename) if filename else ""
        if _REPRO_MARKER in norm:
            rest = norm.rsplit(_REPRO_MARKER, 1)[1]
            module = "repro." + rest[:-3].replace(os.sep, ".") \
                if rest.endswith(".py") else "repro"
            label = f"{module}:{code.co_name}"
        else:
            base = os.path.basename(filename) or "?"
            label = f"{base}:{code.co_name}"
    return label.replace(" ", "_").replace(";", ":")


def _code_key(code):
    return code if isinstance(code, str) else id(code)


@dataclass
class SubsystemRow:
    """Aggregated cost of one subsystem bucket."""

    subsystem: str
    self_s: float = 0.0
    calls: int = 0
    top_label: str = ""
    top_self_s: float = 0.0


@dataclass
class ProfileReport:
    """One profiled case execution."""

    name: str
    wall_s: float
    total_self_s: float
    rows: List[SubsystemRow] = field(default_factory=list)
    stacks: Dict[tuple, int] = field(default_factory=dict)

    def to_json(self) -> dict:
        total = self.total_self_s or 1.0
        return {
            "schema": 1,
            "name": self.name,
            "wall_s": round(self.wall_s, 4),
            "total_self_s": round(self.total_self_s, 4),
            "subsystems": [
                {"subsystem": r.subsystem,
                 "self_s": round(r.self_s, 4),
                 "share": round(r.self_s / total, 4),
                 "calls": r.calls,
                 "top": r.top_label}
                for r in self.rows],
            "stacks": len(self.stacks),
        }


def _attribution(entries) -> Tuple[List[SubsystemRow], float]:
    per: Dict[str, SubsystemRow] = {}
    total = 0.0
    for entry in entries:
        code = entry.code
        filename = None if isinstance(code, str) else code.co_filename
        row = per.setdefault(subsystem_of(filename),
                             SubsystemRow(subsystem_of(filename)))
        row.self_s += entry.inlinetime
        row.calls += entry.callcount
        total += entry.inlinetime
        if entry.inlinetime > row.top_self_s:
            row.top_self_s = entry.inlinetime
            row.top_label = _frame_label(code)
    rows = sorted(per.values(), key=lambda r: -r.self_s)
    return rows, total


def _collapsed(entries) -> Dict[tuple, int]:
    """Proportional full-stack reconstruction from the call graph."""
    by_code = {_code_key(e.code): e for e in entries}
    callees = set()
    for entry in entries:
        for sub in entry.calls or ():
            callees.add(_code_key(sub.code))
    roots = [e for e in entries if _code_key(e.code) not in callees]
    if not roots and entries:  # fully cyclic graph: start at the widest
        roots = [max(entries, key=lambda e: e.totaltime)]

    out: Dict[tuple, int] = {}

    def walk(entry, scale: float, path: tuple, seen: frozenset,
             depth: int) -> None:
        key = _code_key(entry.code)
        path = path + (_frame_label(entry.code),)
        self_s = entry.inlinetime * scale
        if self_s >= _MIN_STACK_S:
            us = int(round(self_s * 1e6))
            if us > 0:
                out[path] = out.get(path, 0) + us
        if depth >= _MAX_DEPTH or key in seen:
            return
        seen = seen | {key}
        for sub in entry.calls or ():
            if sub.totaltime * scale < _MIN_STACK_S:
                continue
            callee = by_code.get(_code_key(sub.code))
            if callee is None or callee.totaltime <= 0:
                leaf = path + (_frame_label(sub.code),)
                us = int(round(sub.totaltime * scale * 1e6))
                if us > 0:
                    out[leaf] = out.get(leaf, 0) + us
                continue
            walk(callee, scale * (sub.totaltime / callee.totaltime),
                 path, seen, depth + 1)

    for root in roots:
        walk(root, 1.0, (), frozenset(), 0)
    return out


def profile_callable(fn, name: str = "callable") -> ProfileReport:
    """Run ``fn()`` under cProfile; attribute and fold its cost."""
    profiler = cProfile.Profile()
    start = time.perf_counter()
    profiler.enable()
    try:
        fn()
    finally:
        profiler.disable()
    wall = time.perf_counter() - start
    entries = profiler.getstats()
    rows, total = _attribution(entries)
    return ProfileReport(name=name, wall_s=wall, total_self_s=total,
                         rows=rows, stacks=_collapsed(entries))


def profile_case(case, overrides: Optional[Dict[str, object]] = None,
                 warmup: int = 0) -> ProfileReport:
    """Profile one registry case (a single repetition, gates ignored)."""
    from repro.bench.execute import run_case

    def once():
        run_case(case, overrides, repeats=1, warmup=warmup)

    return profile_callable(once, name=case.name)


def format_report(report: ProfileReport, top: int = 12) -> str:
    """Render the subsystem attribution table."""
    total = report.total_self_s or 1.0
    lines = [f"profile of {report.name!r}: wall {report.wall_s:.2f}s, "
             f"profiled self time {report.total_self_s:.2f}s, "
             f"{len(report.stacks)} distinct stacks"]
    header = f"{'subsystem':<10} {'self_s':>8} {'share':>7} " \
             f"{'calls':>10}  hottest frame"
    lines.append(header)
    lines.append("-" * len(header))
    for row in report.rows[:top]:
        lines.append(f"{row.subsystem:<10} {row.self_s:>8.3f} "
                     f"{row.self_s / total:>6.1%} {row.calls:>10,}  "
                     f"{row.top_label}")
    hidden = len(report.rows) - top
    if hidden > 0:
        lines.append(f"... {hidden} smaller subsystem(s) elided")
    return "\n".join(lines)


def main_self_check() -> int:  # pragma: no cover - manual utility
    """``python -m repro.bench.profile``: profile the suite case."""
    from repro.bench.registry import get_case

    report = profile_case(get_case("suite"))
    print(format_report(report))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main_self_check())
