"""Handlers behind ``python -m repro bench ...``.

Argument *parsing* lives in :mod:`repro.__main__` with the rest of the
CLI; this module owns the behaviour: case selection, ``--param``
overrides, artifact/report writing, history appends, verdict printing,
and exit codes.  The back-compat ``scripts/bench_*.py`` wrappers call
:func:`run_gate` so a script invocation and a ``repro bench run`` of
the same case are byte-for-byte the same measurement.
"""

from __future__ import annotations

import json
import os
import time
from typing import Dict, List, Optional

from repro.bench import compare as cmp
from repro.bench import history as hist
from repro.bench.execute import CaseRun, run_case
from repro.bench.registry import BenchCase, all_cases, get_case

#: Schema of the ``bench run --json`` report envelope.
REPORT_SCHEMA = 1


def parse_params(pairs: Optional[List[str]]) -> Dict[str, object]:
    """``--param key=value`` pairs; values parse as JSON when they can.

    ``--param benchmark=fop`` keeps the string; ``--param
    'benchmarks=["fop"]'`` and ``--param repeats=3`` get real types.
    """
    overrides: Dict[str, object] = {}
    for pair in pairs or []:
        key, sep, raw = pair.partition("=")
        if not sep or not key:
            raise SystemExit(f"bench: --param needs key=value, got {pair!r}")
        try:
            overrides[key] = json.loads(raw)
        except ValueError:
            overrides[key] = raw
    return overrides


def select_cases(names: List[str], all_flag: bool) -> List[BenchCase]:
    if all_flag:
        return all_cases()
    if not names:
        known = ", ".join(c.name for c in all_cases())
        raise SystemExit(f"bench: name at least one case or pass --all; "
                         f"known cases: {known}")
    try:
        return [get_case(name) for name in names]
    except ValueError as exc:
        raise SystemExit(f"bench: {exc}")


def check_override_keys(cases: List[BenchCase],
                        overrides: Dict[str, object]) -> None:
    """Every ``--param`` key must exist on at least one selected case."""
    for key in overrides:
        if not any(key in case.params for case in cases):
            known = sorted({k for case in cases for k in case.params})
            raise SystemExit(f"bench: no selected case has parameter "
                             f"{key!r}; known: {', '.join(known)}")


def _gate_line(gate: dict) -> str:
    status = "ok" if gate["passed"] else "FAIL"
    return (f"    [{status}] {gate['metric']} {gate['op']} "
            f"{gate['limit']!r} (got {gate['value']!r})")


def _print_case_run(run: CaseRun) -> None:
    verdict = "PASS" if run.passed else "FAIL"
    wall = run.wall
    primary = run.primary_value
    primary_txt = (f"{primary:.4g}" if isinstance(primary, float)
                   else str(primary))
    print(f"{run.case.name:8s} {verdict}  "
          f"{run.case.primary_metric}={primary_txt}  "
          f"wall median {wall['median']:.2f}s "
          f"(mad {wall['mad']:.3f}, min {wall['min']:.2f}, "
          f"n={wall['n']})")
    for gate in run.gates:
        if not gate["passed"]:
            print(_gate_line(gate))


def _execute_selection(args) -> List[dict]:
    """Run the selected cases, returning their history entries.

    Prints progress per case; writes ``BENCH_<case>.json`` artifacts
    and appends history unless disabled.  The caller owns exit codes.
    """
    overrides = parse_params(getattr(args, "param", None))
    cases = select_cases(getattr(args, "cases", []) or [],
                         getattr(args, "all", False))
    check_override_keys(cases, overrides)

    entries: List[dict] = []
    for case in cases:
        mine = {k: v for k, v in overrides.items() if k in case.params}
        run = run_case(case, mine, repeats=args.repeats, warmup=args.warmup)
        _print_case_run(run)
        entry = hist.build_entry(run)
        entries.append(entry)
        if not getattr(args, "no_artifacts", False):
            out_dir = getattr(args, "out_dir", None) or "."
            os.makedirs(out_dir, exist_ok=True)
            artifact = os.path.join(out_dir, f"BENCH_{case.name}.json")
            with open(artifact, "w") as fh:
                json.dump(entry, fh, indent=1, default=str)
                fh.write("\n")
        if not getattr(args, "no_history", False):
            hist.append(args.history, entry)
    return entries


def _write_report(path: str, entries: List[dict]) -> None:
    doc = {
        "schema": REPORT_SCHEMA,
        "ts": time.time(),
        "entries": entries,
        "passed": all(e.get("passed") for e in entries),
    }
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=1, default=str)
        fh.write("\n")


def _load_report(path: str) -> List[dict]:
    try:
        with open(path, "r") as fh:
            doc = json.load(fh)
    except OSError as exc:
        raise SystemExit(f"bench: cannot read {path!r}: {exc}")
    except ValueError:
        raise SystemExit(f"bench: {path!r} is not a bench report "
                         "(see `repro bench run --json`)")
    if not isinstance(doc, dict) or doc.get("schema") != REPORT_SCHEMA \
            or not isinstance(doc.get("entries"), list):
        raise SystemExit(f"bench: {path!r} is not a bench report "
                         "(see `repro bench run --json`)")
    return doc["entries"]


def cmd_list(args) -> None:
    for case in all_cases():
        arrow = ("↓" if case.primary_direction == "lower" else "↑")
        print(f"{case.name:8s} {case.primary_metric} {arrow} "
              f"(±{case.compare_threshold:.0%}), {len(case.gates)} gate(s)")
        print(f"         {case.description}")
        for gate in case.gates:
            limit = (f"param {gate.limit!r}" if isinstance(gate.limit, str)
                     else repr(gate.limit))
            print(f"           gate: {gate.metric} {gate.op} {limit}")


def cmd_run(args) -> None:
    entries = _execute_selection(args)
    if args.json:
        _write_report(args.json, entries)
        print(f"report -> {args.json}")
    if not getattr(args, "no_history", False):
        print(f"history -> {args.history} (+{len(entries)} entries)")
    failed = [e["case"] for e in entries if not e["passed"]]
    if failed:
        raise SystemExit(f"bench: gate failure in: {', '.join(failed)}")


def cmd_history(args) -> None:
    entries, skipped = hist.load(args.history)
    if args.case:
        entries = [e for e in entries if e.get("case") == args.case]
    entries = entries[-args.limit:]
    if args.json:
        print(json.dumps(entries, indent=1, default=str))
        return
    if not entries:
        print(f"bench history: no entries in {args.history}"
              + (f" for case {args.case!r}" if args.case else ""))
        if skipped:
            print(f"({skipped} corrupt line(s) skipped)")
        return
    for e in entries:
        primary = (e.get("primary") or {}).get("metric", "?")
        value = (e.get("metrics") or {}).get(primary)
        value_txt = f"{value:.4g}" if isinstance(value, float) else str(value)
        flags = []
        if not e.get("passed", True):
            flags.append("FAILED")
        if e.get("migrated"):
            flags.append("migrated")
        sha = (e.get("git_sha") or "-")[:10]
        code = (e.get("code_version") or "-")[:10]
        print(f"{e.get('iso', '?'):20s} {e.get('case', '?'):8s} "
              f"{primary}={value_txt:<10s} code={code} git={sha}"
              + (f"  [{', '.join(flags)}]" if flags else ""))
    tail = f"{len(entries)} entr(y/ies) from {args.history}"
    if skipped:
        tail += f"; {skipped} corrupt line(s) skipped"
    print(tail)


def cmd_compare(args) -> None:
    history, skipped = hist.load(args.history)
    if not history and not args.from_report:
        # First-run migration shim: lift any legacy BENCH_*.json
        # artifacts lying around so the window is not empty.
        seeded = hist.seed_from_artifacts(history_path=args.history)
        if seeded:
            print(f"seeded {len(seeded)} baseline entr(y/ies) from legacy "
                  f"BENCH_*.json artifacts into {args.history}")
            history, skipped = hist.load(args.history)
    if args.from_report:
        entries = _load_report(args.from_report)
    else:
        entries = _execute_selection(args)
        print()
    scores = cmp.score_run(entries, history, window=args.window,
                           threshold=args.threshold,
                           code_version=args.baseline_code)
    print(cmp.format_scores(scores))
    if skipped:
        print(f"({skipped} corrupt history line(s) skipped)")
    if args.json:
        doc = {"schema": REPORT_SCHEMA, "scores": scores,
               "window": args.window, "history": args.history}
        with open(args.json, "w") as fh:
            json.dump(doc, fh, indent=1, default=str)
            fh.write("\n")
        print(f"verdicts -> {args.json}")
    gate_failures = [e["case"] for e in entries if not e.get("passed")]
    if gate_failures:
        raise SystemExit(
            f"bench: gate failure in: {', '.join(gate_failures)}")
    if cmp.has_failures(scores):
        bad = [f"{s['case']} ({s['verdict']})" for s in scores
               if s["verdict"] in cmp.FAILING_VERDICTS]
        raise SystemExit(f"bench: regression verdict in: {', '.join(bad)}")


def cmd_profile(args) -> None:
    from repro.bench import profile as prof
    from repro.telemetry.export import write_collapsed

    overrides = parse_params(getattr(args, "param", None))
    case = select_cases([args.case], False)[0]
    check_override_keys([case], overrides)
    report = prof.profile_case(case, overrides, warmup=args.warmup)
    print(prof.format_report(report, top=args.top))
    if args.collapsed:
        lines = write_collapsed(args.collapsed, report.stacks)
        print(f"collapsed stacks -> {args.collapsed} ({lines} lines; "
              "feed to flamegraph.pl or speedscope)")
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(report.to_json(), fh, indent=1)
            fh.write("\n")
        print(f"profile report -> {args.json}")


def cmd_migrate(args) -> None:
    seeded = hist.seed_from_artifacts(args.paths or None,
                                      history_path=args.history)
    if not seeded:
        print("bench migrate: no migratable BENCH_*.json artifacts found")
        return
    for entry in seeded:
        print(f"  {entry['source']} -> {entry['case']} "
              f"({entry['primary']['metric']}="
              f"{entry['metrics'].get(entry['primary']['metric'])})")
    print(f"seeded {len(seeded)} entr(y/ies) into {args.history}")


def run_gate(case_name: str, overrides: Dict[str, object],
             out: Optional[str] = None,
             history_path: Optional[str] = None) -> int:
    """Back-compat entry for the ``scripts/bench_*.py`` wrappers.

    Runs one case with ``overrides``, prints the summary, writes the
    legacy-named artifact, optionally appends history, and returns the
    process exit code (0 pass / 1 gate failure).
    """
    case = get_case(case_name)
    run = run_case(case, overrides)
    _print_case_run(run)
    entry = hist.build_entry(run)
    if out:
        with open(out, "w") as fh:
            json.dump(entry, fh, indent=1, default=str)
            fh.write("\n")
        print(f"report -> {out}")
    if history_path:
        hist.append(history_path, entry)
        print(f"history -> {history_path}")
    return 0 if run.passed else 1
