"""Case execution: warmup, repeats, robust wall-time statistics.

:func:`run_case` is the one way a :class:`~repro.bench.registry.
BenchCase` is executed — the CLI, the back-compat scripts, and the
profiler all come through here, so every run gets the same cache
hygiene (fresh in-process memo, no ambient disk layer) and the same
measurement protocol: ``warmup`` discarded runs, then ``repeats``
timed runs summarized by :func:`repro.bench.stats.robust_stats`.
Metrics come from the **last** timed repetition; the wall-time
statistics cover all of them.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.bench.registry import BenchCase
from repro.bench.stats import robust_stats


@dataclass
class CaseRun:
    """One executed case: resolved params, metrics, gates, verdict."""

    case: BenchCase
    params: Dict[str, object]
    metrics: Dict[str, object]
    wall: Dict[str, float]
    gates: List[dict] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return all(g["passed"] for g in self.gates)

    @property
    def primary_value(self):
        return self.metrics.get(self.case.primary_metric)


def run_case(case: BenchCase,
             overrides: Optional[Dict[str, object]] = None,
             repeats: Optional[int] = None,
             warmup: Optional[int] = None) -> CaseRun:
    """Execute ``case`` and evaluate its gates.

    The harness runner's global cache state is snapshotted around the
    run: cases are free to install their own disk caches or clear the
    memo, and unit tests (which pin their own state) see none of it
    afterwards.
    """
    from repro.harness import runner

    params = case.resolve_params(overrides)
    n_repeats = case.default_repeats if repeats is None else max(1, repeats)
    n_warmup = case.default_warmup if warmup is None else max(0, warmup)

    runner.clear_cache()
    runner.set_disk_cache(None)
    try:
        for _ in range(n_warmup):
            case.run(dict(params))
        walls: List[float] = []
        metrics: Dict[str, object] = {}
        for _ in range(n_repeats):
            start = time.perf_counter()
            metrics = case.run(dict(params))
            walls.append(time.perf_counter() - start)
    finally:
        runner.clear_cache()
        runner.set_disk_cache(None)
    gates = case.evaluate_gates(metrics, params)
    return CaseRun(case=case, params=params, metrics=metrics,
                   wall=robust_stats(walls), gates=gates)


def run_cases(cases: List[BenchCase],
              overrides: Optional[Dict[str, object]] = None,
              repeats: Optional[int] = None,
              warmup: Optional[int] = None) -> List[CaseRun]:
    """Run several cases; per-case overrides keep only declared keys.

    ``overrides`` is shared across the selection, so keys are filtered
    per case (strict checking happens in the CLI, which knows the full
    selection and can reject keys *no* selected case declares).
    """
    runs = []
    for case in cases:
        mine = {k: v for k, v in (overrides or {}).items()
                if k in case.params}
        runs.append(run_case(case, mine, repeats=repeats, warmup=warmup))
    return runs
