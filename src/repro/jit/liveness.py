"""Backward liveness over machine code, feeding GC maps.

Opt-compiled code keeps references in virtual registers, so its GC maps
must come from a real liveness analysis: at every GC point (allocation
or call) the map lists the registers that (a) may hold a reference and
(b) are live across the point.  The analysis runs at the machine-code
level on an instruction-granularity CFG, with register sets encoded as
Python ints (bitsets) for speed.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.hw.isa import (
    MInst,
    M_ALOAD, M_ALU, M_ALUI, M_ASTORE, M_BC, M_BR, M_CALL, M_CALLV,
    M_GETF, M_GETSTATIC, M_LDF, M_LEN, M_MOV, M_MOVI, M_NEW, M_NEWARR,
    M_NULLCHK, M_PUTF, M_PUTSTATIC, M_RET, M_STF, GC_POINT_OPS,
)


def uses_defs(inst: MInst) -> Tuple[List[int], List[int]]:
    """Registers read and written by ``inst``."""
    op = inst.op
    uses: List[int] = []
    defs: List[int] = []
    if op in (M_ALU,):
        uses = [inst.rs1, inst.rs2]
        defs = [inst.rd]
    elif op in (M_ALUI, M_MOV, M_GETF, M_LEN):
        uses = [inst.rs1]
        defs = [inst.rd]
    elif op == M_MOVI or op == M_GETSTATIC:
        defs = [inst.rd]
    elif op == M_LDF:
        defs = [inst.rd]
    elif op in (M_STF, M_PUTSTATIC):
        uses = [inst.rs1]
    elif op == M_PUTF:
        uses = [inst.rs1, inst.rs2]
    elif op == M_ALOAD:
        uses = [inst.rs1, inst.rs2]
        defs = [inst.rd]
    elif op == M_ASTORE:
        # rd is the *value* register here (a use, not a def).
        uses = [inst.rs1, inst.rs2, inst.rd]
    elif op == M_BC:
        uses = [inst.rs1] + ([inst.rs2] if inst.rs2 is not None else [])
    elif op == M_CALL:
        uses = list(inst.imm)
        if inst.rd is not None:
            defs = [inst.rd]
    elif op == M_CALLV:
        uses = [inst.rs1] + [r for r in inst.imm if r != inst.rs1]
        if inst.rd is not None:
            defs = [inst.rd]
    elif op == M_RET:
        if inst.rs1 is not None:
            uses = [inst.rs1]
    elif op == M_NULLCHK:
        uses = [inst.rs1]
    elif op == M_NEW:
        defs = [inst.rd]
    elif op == M_NEWARR:
        uses = [inst.rs1]
        defs = [inst.rd]
    return uses, defs


def successors(code: List[MInst], pc: int) -> List[int]:
    inst = code[pc]
    if inst.op == M_BR:
        return [inst.imm]
    if inst.op == M_BC:
        return [inst.imm, pc + 1]
    if inst.op == M_RET:
        return []
    return [pc + 1] if pc + 1 < len(code) else []


def compute_liveness(code: List[MInst]) -> List[int]:
    """Per-pc live-in register bitsets (int-encoded)."""
    n = len(code)
    use_bits = [0] * n
    def_bits = [0] * n
    succ: List[List[int]] = [[] for _ in range(n)]
    pred: List[List[int]] = [[] for _ in range(n)]
    for pc in range(n):
        uses, defs = uses_defs(code[pc])
        for r in uses:
            use_bits[pc] |= 1 << r
        for r in defs:
            def_bits[pc] |= 1 << r
        for s in successors(code, pc):
            if s < n:
                succ[pc].append(s)
                pred[s].append(pc)

    live_in = [0] * n
    worklist = list(range(n - 1, -1, -1))
    in_worklist = [True] * n
    while worklist:
        pc = worklist.pop()
        in_worklist[pc] = False
        live_out = 0
        for s in succ[pc]:
            live_out |= live_in[s]
        new_in = use_bits[pc] | (live_out & ~def_bits[pc])
        if new_in != live_in[pc]:
            live_in[pc] = new_in
            for p in pred[pc]:
                if not in_worklist[p]:
                    in_worklist[p] = True
                    worklist.append(p)
    return live_in


def compute_gc_maps(code: List[MInst], ref_vregs: Set[int]) -> Dict[int, Tuple]:
    """GC maps for every GC point in ``code``.

    A register appears in the map when it may hold a reference
    (``ref_vregs``, from the HIR type analysis) and is live *after* the
    GC point; the point's own result register is excluded — at collection
    time it does not yet hold the new object.
    """
    live_in = compute_liveness(code)
    n = len(code)
    ref_mask = 0
    for r in ref_vregs:
        ref_mask |= 1 << r
    maps: Dict[int, Tuple] = {}
    for pc, inst in enumerate(code):
        if inst.op not in GC_POINT_OPS:
            continue
        live_out = 0
        for s in successors(code, pc):
            if s < n:
                live_out |= live_in[s]
        if inst.rd is not None:
            live_out &= ~(1 << inst.rd)
        # Arguments of the call being executed are live *during* it.
        if inst.op in (M_CALL, M_CALLV):
            for r in inst.imm:
                live_out |= 1 << r
        elif inst.op == M_NEWARR:
            pass  # the length register holds an int
        bits = live_out & ref_mask
        roots = []
        reg = 0
        while bits:
            if bits & 1:
                roots.append(("r", reg))
            bits >>= 1
            reg += 1
        maps[pc] = tuple(roots)
    return maps
