"""Compiled-method container and the sorted code lookup table.

The paper keeps "a sorted table of all methods with their start and end
address" to map a sampled EIP back to its Java method, and allocates
compiled code in the *immortal* space so the copying GC never moves it
(section 4.2) — stale code of recompiled methods is tolerated because
"only a small fraction of methods are re-compiled".  This module
reproduces both: a bump-allocated immortal code space and a
bisect-maintained method table.
"""

from __future__ import annotations

from bisect import bisect_right, insort
from typing import Dict, List, Optional, Tuple

from repro.gc import layout
from repro.hw.isa import INSTRUCTION_BYTES, MInst

LEVEL_BASELINE = 0
LEVEL_OPT = 1


class CompiledMethod:
    """One compiled version of a method.

    Attributes
    ----------
    code:
        The machine instructions.
    code_addr:
        Immortal-space base address; instruction ``i`` has
        ``EIP = code_addr + i * INSTRUCTION_BYTES``.
    gc_maps:
        ``pc -> tuple of root descriptors``; a descriptor is ``("r", n)``
        for register ``n`` or ``("s", n)`` for frame slot ``n``.  Present
        at GC points only (the paper's starting point).
    bc_map:
        ``pc -> bytecode index`` for *every* instruction — the paper's
        extension of the mapping information ("we extended the optimizing
        compiler so that it generates the bytecode index mapping for each
        machine code instruction, not only for GC points").
    ir_map:
        ``pc -> HIR instruction id`` (opt level only); lets the monitor
        count events per IR instruction (section 4.2).
    translation:
        The closure-threaded form of :attr:`code` built lazily by
        :mod:`repro.hw.translate` on first execution; dropped when this
        version is superseded (:meth:`CodeCache.note_replaced`) so
        recompiled methods — opt-compiler upgrades, devirt reverts —
        are re-specialized against their new code.
    """

    def __init__(self, method, level: int, code: List[MInst],
                 reg_count: int, frame_words: int,
                 gc_maps: Dict[int, Tuple],
                 hir=None):
        self.method = method
        self.level = level
        self.code = code
        self.reg_count = reg_count
        self.frame_words = frame_words
        self.gc_maps = gc_maps
        self.hir = hir
        self.code_addr = 0  # assigned by the code cache
        self.translation = None  # built by repro.hw.translate on demand
        #: callv sites converted to direct calls by the opt compiler
        #: (0 for baseline code); read by the decision-lineage ledger.
        self.devirt_sites = 0
        self.bc_map: List[int] = [inst.bc_index for inst in code]
        self.ir_map: List[Optional[int]] = [inst.ir_id for inst in code]

    @property
    def code_bytes(self) -> int:
        return len(self.code) * INSTRUCTION_BYTES

    @property
    def end_addr(self) -> int:
        return self.code_addr + self.code_bytes

    def pc_of_eip(self, eip: int) -> int:
        pc = (eip - self.code_addr) // INSTRUCTION_BYTES
        if not 0 <= pc < len(self.code):
            raise ValueError(f"eip {eip:#x} outside {self}")
        return pc

    def eip_of_pc(self, pc: int) -> int:
        return self.code_addr + pc * INSTRUCTION_BYTES

    def bytecode_index(self, eip: int) -> int:
        """Machine-code-map lookup: EIP -> bytecode index."""
        return self.bc_map[self.pc_of_eip(eip)]

    def ir_id(self, eip: int) -> Optional[int]:
        return self.ir_map[self.pc_of_eip(eip)]

    def __getstate__(self):
        # The translation is a web of closures over CPU internals —
        # unpicklable by construction.  Drop it from snapshots;
        # repro.hw.translate.translation_for rebuilds it (determin-
        # istically, from self.code) on first execution after restore.
        state = self.__dict__.copy()
        state["translation"] = None
        return state

    def __repr__(self) -> str:
        kind = "opt" if self.level == LEVEL_OPT else "base"
        return (f"<compiled {self.method.qualified_name} [{kind}] "
                f"@{self.code_addr:#x}+{self.code_bytes}>")


class CodeCache:
    """Immortal code space + the sorted EIP -> method table."""

    def __init__(self):
        self._cursor = layout.CODE_BASE
        #: Parallel sorted structures: start addresses and entries.
        self._starts: List[int] = []
        self._entries: List[CompiledMethod] = []
        self.stale_bytes = 0  # code of replaced method versions

    def install(self, cm: CompiledMethod) -> CompiledMethod:
        """Place ``cm`` in the immortal space and index it."""
        size = max(cm.code_bytes, INSTRUCTION_BYTES)
        if self._cursor + size > layout.CODE_LIMIT:
            raise MemoryError("immortal code space exhausted")
        cm.code_addr = self._cursor
        self._cursor += size
        index = bisect_right(self._starts, cm.code_addr)
        self._starts.insert(index, cm.code_addr)
        self._entries.insert(index, cm)
        return cm

    def note_replaced(self, old: CompiledMethod) -> None:
        """Account a superseded compiled version (kept: code never moves,
        so stale versions only cost space — section 4.2).  The stale
        version's translation is dropped: new invocations dispatch to
        the replacement, and any frame still running the old code simply
        re-translates on its next activation."""
        self.stale_bytes += old.code_bytes
        old.translation = None

    def lookup(self, eip: int) -> Optional[CompiledMethod]:
        """Sorted-table lookup of the method containing ``eip``.

        Returns None for addresses outside the VM-generated code — those
        samples are dropped by the collector thread.
        """
        if not layout.in_code_space(eip):
            return None
        index = bisect_right(self._starts, eip) - 1
        if index < 0:
            return None
        cm = self._entries[index]
        if eip >= cm.end_addr:
            return None
        return cm

    @property
    def methods(self) -> List[CompiledMethod]:
        return list(self._entries)

    @property
    def total_code_bytes(self) -> int:
        return self._cursor - layout.CODE_BASE

    def __len__(self) -> int:
        return len(self._entries)
