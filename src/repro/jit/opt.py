"""The optimizing compiler pipeline.

bytecode -> HIR (use-def form) -> local optimizations -> machine code,
with liveness-derived GC maps and the full per-instruction bytecode /
HIR maps the monitoring system needs (section 4.2).  The produced
:class:`CompiledMethod` keeps its HIR attached: the monitoring
controller runs the instructions-of-interest filter over it right after
compilation ("filtering of instructions of interest at method
compilation time", section 5.1).
"""

from __future__ import annotations

from typing import Optional

from repro.jit.codecache import LEVEL_OPT, CompiledMethod
from repro.jit.devirt import devirtualize
from repro.jit.hir import build_hir
from repro.jit.inline import inlined_view
from repro.jit.liveness import compute_gc_maps
from repro.jit.lowering import lower
from repro.jit.optimizer import optimize
from repro.vm.model import MethodInfo


def compile_opt(method: MethodInfo, *, inline: bool = True,
                inline_max_bytecodes: Optional[int] = None,
                devirt: bool = True, telemetry=None) -> CompiledMethod:
    """Compile ``method`` at the optimizing level.

    With ``inline`` enabled, small static callees are expanded first
    (see :mod:`repro.jit.inline`) — both a speed optimization and an
    enabler for the instructions-of-interest analysis, which walks
    use-def edges within one method's HIR.
    """
    if telemetry is not None:
        metrics = telemetry.metrics
        metrics.counter(
            "jit.compilations", "methods compiled, by level"
        ).labels("opt").inc()
        metrics.counter(
            "jit.compiled_bytecodes", "bytecodes compiled, by level"
        ).labels("opt").inc(len(method.code))
    source = method
    if inline:
        kwargs = {}
        if inline_max_bytecodes is not None:
            kwargs["max_callee_bytecodes"] = inline_max_bytecodes
        shadow = inlined_view(method, **kwargs)
        if shadow is not None:
            source = shadow
    func = build_hir(source)
    devirt_sites = devirtualize(func) if devirt else 0
    optimize(func)
    code, reg_count = lower(func)
    ref_vregs = {v for v, types in func.vreg_types.items() if "r" in types}
    gc_maps = compute_gc_maps(code, ref_vregs)
    # Opt code keeps everything in registers: no frame-memory slots.
    # The compiled method's identity stays the *original* method even
    # when the HIR came from the inlined shadow.
    cm = CompiledMethod(method, LEVEL_OPT, code, reg_count,
                        frame_words=0, gc_maps=gc_maps, hir=func)
    cm.devirt_sites = devirt_sites
    return cm
