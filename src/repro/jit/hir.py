"""High-level IR (HIR) of the optimizing compiler.

The HIR is a block-structured, register-based IR with *explicit use-def
edges*: every operand of an instruction is a reference to the
instruction that produced it (or to a block-entry :samp:`param`, whose
producer is unknown).  Section 5.2's instructions-of-interest analysis
is a walk over exactly these edges: "the opt-compiler computes this
mapping by walking the use-def edges upwards from heap access
instructions".

Construction (:func:`build_hir`) abstractly interprets the operand
stack, so stack traffic disappears: values flow directly from producers
to consumers, and only block-boundary reconciliation ("sync moves" into
canonical per-local / per-stack-slot virtual registers) remains.  This
is the essential difference from baseline code, which spills every push
and pop to frame memory.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.vm.bytecode import (
    BRANCH_OPS,
    T_REF,
    TERMINAL_OPS,
    Analysis,
    analyze,
    branch_target,
)
from repro.vm.model import MethodInfo

#: HIR operation names.
HIR_OPS = (
    "param", "const", "alu", "getfield", "putfield", "getstatic",
    "putstatic", "new", "newarray", "aload", "astore", "len",
    "call", "callv", "nullcheck", "move", "ret", "br", "bc",
)

#: Heap-access HIR ops: the candidate instructions S of section 5.2
#: (field/array accesses, virtual calls / object-header accesses).
HEAP_ACCESS_HIR_OPS = frozenset(
    {"getfield", "putfield", "aload", "astore", "len", "callv"}
)

#: Ops with observable effects (never dead-code-eliminated).  Loads are
#: included: they can fault and they produce the cache events the whole
#: system is about.
EFFECTFUL_OPS = frozenset(
    {"getfield", "putfield", "getstatic", "putstatic", "new", "newarray",
     "aload", "astore", "len", "call", "callv", "nullcheck", "move",
     "ret", "br", "bc"}
)


class HIRInst:
    """One HIR instruction; operands in ``args`` are use-def edges."""

    __slots__ = ("id", "op", "args", "aux", "imm", "typ", "vreg", "bc_index")

    def __init__(self, id_: int, op: str, args: Tuple = (), aux=None,
                 imm=None, typ: str = "v", vreg: Optional[int] = None,
                 bc_index: int = -1):
        self.id = id_
        self.op = op
        self.args = args
        self.aux = aux
        self.imm = imm
        self.typ = typ  # "i" int, "r" ref, "v" void, "x" conflict
        self.vreg = vreg
        self.bc_index = bc_index

    def __repr__(self) -> str:
        ops = ",".join(f"t{a.id}" if a is not None else "?" for a in self.args)
        return f"<hir {self.id}: {self.op}({ops}) v{self.vreg}>"


class HIRBlock:
    """A basic block: bytecode range plus its instructions."""

    def __init__(self, index: int, start_bci: int):
        self.index = index
        self.start_bci = start_bci
        self.insts: List[HIRInst] = []
        #: Block indices of successors (filled by the builder).
        self.successors: List[int] = []

    def __repr__(self) -> str:
        return f"<block {self.index} @bc{self.start_bci} n={len(self.insts)}>"


class HIRFunction:
    """The HIR of one method."""

    def __init__(self, method: MethodInfo, blocks: List[HIRBlock],
                 max_locals: int, max_stack: int, analysis: Analysis):
        self.method = method
        self.blocks = blocks
        self.max_locals = max_locals
        self.max_stack = max_stack
        self.analysis = analysis
        #: Total virtual registers allocated (canonical + temps).
        self.vreg_count = 0
        #: vreg -> set of abstract types seen ("i"/"r").
        self.vreg_types: Dict[int, set] = {}

    def all_insts(self):
        for block in self.blocks:
            yield from block.insts

    def inst_by_id(self) -> Dict[int, HIRInst]:
        return {inst.id: inst for inst in self.all_insts()}


def _leaders(method: MethodInfo) -> List[int]:
    """Bytecode indices that start basic blocks."""
    code = method.code
    leaders = {0}
    for pc, instr in enumerate(code):
        if instr.op in BRANCH_OPS:
            leaders.add(branch_target(instr))
            if pc + 1 < len(code):
                leaders.add(pc + 1)
        elif instr.op in TERMINAL_OPS and pc + 1 < len(code):
            leaders.add(pc + 1)
    return sorted(leaders)


class _Builder:
    """Abstract interpreter turning bytecode into HIR blocks."""

    def __init__(self, method: MethodInfo):
        self.method = method
        self.analysis = analyze(method)
        self.max_locals = method.max_locals
        self.max_stack = self.analysis.max_stack
        self._next_id = 0
        self._next_temp = self.max_locals + self.max_stack
        self.vreg_types: Dict[int, set] = {}
        self.func: Optional[HIRFunction] = None

    # vreg conventions: locals 0..L-1, stack slots L..L+S-1, temps above.
    def local_vreg(self, i: int) -> int:
        return i

    def stack_vreg(self, j: int) -> int:
        return self.max_locals + j

    def _new_inst(self, block: HIRBlock, op: str, args=(), aux=None, imm=None,
                  typ: str = "v", vreg: Optional[int] = None,
                  bc_index: int = -1) -> HIRInst:
        if vreg is None and typ in ("i", "r", "x"):
            vreg = self._next_temp
            self._next_temp += 1
        inst = HIRInst(self._next_id, op, tuple(args), aux, imm, typ, vreg,
                       bc_index)
        self._next_id += 1
        block.insts.append(inst)
        if vreg is not None and typ in ("i", "r"):
            self.vreg_types.setdefault(vreg, set()).add(typ)
        return inst

    def build(self) -> HIRFunction:
        method = self.method
        code = method.code
        leaders = _leaders(method)
        block_of_bci = {}
        blocks = []
        for index, bci in enumerate(leaders):
            block_of_bci[bci] = index
            blocks.append(HIRBlock(index, bci))
        bounds = leaders[1:] + [len(code)]

        for block, end_bci in zip(blocks, bounds):
            self._build_block(block, end_bci, block_of_bci, code)

        func = HIRFunction(method, blocks, self.max_locals, self.max_stack,
                           self.analysis)
        func.vreg_count = self._next_temp
        func.vreg_types = self.vreg_types
        return func

    def _entry_state(self, block: HIRBlock):
        """Materialize block-entry params for locals and stack slots."""
        state = self.analysis.states[block.start_bci]
        locals_: List[Optional[HIRInst]] = []
        for i, t in enumerate(state.locals):
            typ = t if t in ("i", "r") else "x"
            locals_.append(self._new_inst(block, "param", aux=("L", i),
                                          typ=typ, vreg=self.local_vreg(i),
                                          bc_index=block.start_bci))
        stack: List[HIRInst] = []
        for j, t in enumerate(state.stack):
            typ = t if t in ("i", "r") else "x"
            stack.append(self._new_inst(block, "param", aux=("S", j),
                                        typ=typ, vreg=self.stack_vreg(j),
                                        bc_index=block.start_bci))
        return locals_, stack

    def _sync_moves(self, block: HIRBlock, locals_, stack, bci: int) -> None:
        """Reconcile the abstract state with the canonical vregs."""
        for i, value in enumerate(locals_):
            if value is not None and not (value.op == "param"
                                          and value.aux == ("L", i)):
                self._new_inst(block, "move", (value,), aux=("L", i),
                               typ=value.typ if value.typ != "x" else "i",
                               vreg=self.local_vreg(i), bc_index=bci)
        for j, value in enumerate(stack):
            if not (value.op == "param" and value.aux == ("S", j)):
                self._new_inst(block, "move", (value,), aux=("S", j),
                               typ=value.typ if value.typ != "x" else "i",
                               vreg=self.stack_vreg(j), bc_index=bci)

    def _shield(self, block: HIRBlock, value: HIRInst, bci: int) -> HIRInst:
        """Copy a param into a temp so sync moves cannot clobber it before
        the terminator reads it."""
        if value.op != "param":
            return value
        return self._new_inst(block, "move", (value,), aux=None,
                              typ=value.typ if value.typ != "x" else "i",
                              bc_index=bci)

    def _build_block(self, block: HIRBlock, end_bci: int, block_of_bci,
                     code) -> None:
        if self.analysis.states[block.start_bci] is None:
            return  # unreachable block: no code
        locals_, stack = self._entry_state(block)
        emit = self._new_inst
        bci = block.start_bci
        terminated = False
        while bci < end_bci:
            instr = code[bci]
            op = instr.op
            if op == "iconst":
                stack.append(emit(block, "const", imm=instr.a, typ="i",
                                  bc_index=bci))
            elif op == "aconst_null":
                stack.append(emit(block, "const", imm=None, typ="r",
                                  bc_index=bci))
            elif op in ("iload", "rload"):
                stack.append(locals_[instr.a])
            elif op in ("istore", "rstore"):
                locals_[instr.a] = stack.pop()
            elif op in ("iadd", "isub", "imul", "idiv", "irem", "iand",
                        "ior", "ixor", "ishl", "ishr"):
                b = stack.pop()
                a = stack.pop()
                stack.append(emit(block, "alu", (a, b), aux=op[1:], typ="i",
                                  bc_index=bci))
            elif op == "ineg":
                a = stack.pop()
                stack.append(emit(block, "alu", (a,), aux="neg", typ="i",
                                  bc_index=bci))
            elif op == "dup":
                stack.append(stack[-1])
            elif op == "pop":
                stack.pop()
            elif op == "swap":
                stack[-1], stack[-2] = stack[-2], stack[-1]
            elif op == "getfield":
                base = stack.pop()
                field = instr.a
                stack.append(emit(block, "getfield", (base,), aux=field,
                                  typ="r" if field.is_ref else "i",
                                  bc_index=bci))
            elif op == "putfield":
                value = stack.pop()
                base = stack.pop()
                emit(block, "putfield", (base, value), aux=instr.a,
                     bc_index=bci)
            elif op == "getstatic":
                field = instr.a
                stack.append(emit(block, "getstatic", (),
                                  aux=(field.declaring_class, field),
                                  typ="r" if field.is_ref else "i",
                                  bc_index=bci))
            elif op == "putstatic":
                value = stack.pop()
                field = instr.a
                emit(block, "putstatic", (value,),
                     aux=(field.declaring_class, field), bc_index=bci)
            elif op == "new":
                stack.append(emit(block, "new", (), aux=instr.a, typ="r",
                                  bc_index=bci))
            elif op == "newarray":
                length = stack.pop()
                stack.append(emit(block, "newarray", (length,), aux=instr.a,
                                  typ="r", bc_index=bci))
            elif op == "arraylength":
                arr = stack.pop()
                stack.append(emit(block, "len", (arr,), typ="i",
                                  bc_index=bci))
            elif op == "arrload":
                index = stack.pop()
                arr = stack.pop()
                stack.append(emit(block, "aload", (arr, index), aux=instr.a,
                                  typ="r" if instr.a == "ref" else "i",
                                  bc_index=bci))
            elif op == "arrstore":
                value = stack.pop()
                index = stack.pop()
                arr = stack.pop()
                emit(block, "astore", (arr, index, value), aux=instr.a,
                     bc_index=bci)
            elif op in ("invokestatic", "invokevirtual"):
                if op == "invokestatic":
                    target = instr.a
                else:
                    target = instr.a.method(instr.b)
                n = target.num_args
                args = stack[len(stack) - n:] if n else []
                del stack[len(stack) - n:]
                typ = {"int": "i", "ref": "r"}.get(target.return_kind, "v")
                if op == "invokestatic":
                    result = emit(block, "call", tuple(args), aux=target,
                                  typ=typ, bc_index=bci)
                else:
                    result = emit(block, "callv", tuple(args),
                                  aux=(instr.a, instr.a.vtable_slot(instr.b)),
                                  typ=typ, bc_index=bci)
                if typ != "v":
                    stack.append(result)
            elif op in ("return", "ireturn", "rreturn"):
                value = (stack.pop(),) if op != "return" else ()
                emit(block, "ret", value, bc_index=bci)
                terminated = True
                break
            elif op == "goto":
                self._sync_moves(block, locals_, stack, bci)
                emit(block, "br", imm=block_of_bci[instr.a], bc_index=bci)
                block.successors.append(block_of_bci[instr.a])
                terminated = True
                break
            elif op in ("if_icmp", "ifz", "ifnull", "ifnonnull"):
                if op == "if_icmp":
                    b = stack.pop()
                    a = stack.pop()
                    cond, target_bci = instr.a, instr.b
                    operands = (self._shield(block, a, bci),
                                self._shield(block, b, bci))
                elif op == "ifz":
                    a = stack.pop()
                    cond, target_bci = instr.a, instr.b
                    operands = (self._shield(block, a, bci),)
                else:
                    a = stack.pop()
                    cond, target_bci = op[2:], instr.a
                    operands = (self._shield(block, a, bci),)
                self._sync_moves(block, locals_, stack, bci)
                emit(block, "bc", operands, aux=cond,
                     imm=block_of_bci[target_bci], bc_index=bci)
                block.successors.append(block_of_bci[target_bci])
                block.successors.append(block_of_bci[bci + 1])
                terminated = True
                break
            elif op == "nop":
                pass
            else:  # pragma: no cover - verifier rejects unknown ops
                raise ValueError(f"hir builder: unknown bytecode {op}")
            bci += 1
        if not terminated:
            # Fall through into the next block.
            self._sync_moves(block, locals_, stack, end_bci - 1)
            block.successors.append(block_of_bci[end_bci])


def build_hir(method: MethodInfo) -> HIRFunction:
    """Translate a verified method into HIR."""
    return _Builder(method).build()
