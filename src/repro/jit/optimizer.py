"""Classic local optimizations on HIR.

The optimizing compiler applies, per basic block:

* **constant folding** of integer ALU operations,
* **redundant-load elimination** (local CSE of ``getfield`` /
  ``getstatic`` / ``aload`` / ``len``, invalidated by stores and calls),
* **dead-code elimination** of pure instructions whose results are
  never used.

Together with the register-based operand stack of the HIR builder, this
is what makes opt-compiled code substantially faster than baseline
code — the gap Jikes RVM's adaptive system (section 3.2) exploits.
All passes preserve use-def edges (operands are rewritten through the
replacement map), so the instructions-of-interest analysis can run on
optimized HIR.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.jit.hir import EFFECTFUL_OPS, HIRBlock, HIRFunction, HIRInst

_FOLDABLE = {
    "add": lambda a, b: a + b,
    "sub": lambda a, b: a - b,
    "mul": lambda a, b: a * b,
    "and": lambda a, b: a & b,
    "or": lambda a, b: a | b,
    "xor": lambda a, b: a ^ b,
    "shl": lambda a, b: (a << (b & 31)) & 0xFFFFFFFF,
    "shr": lambda a, b: a >> (b & 31),
}


def _resolve(inst: Optional[HIRInst],
             replaced: Dict[int, HIRInst]) -> Optional[HIRInst]:
    while inst is not None and inst.id in replaced:
        inst = replaced[inst.id]
    return inst


def _fold_and_cse_block(block: HIRBlock, replaced: Dict[int, HIRInst],
                        stats: Dict[str, int]) -> None:
    #: CSE availability: key -> producing instruction.
    available: Dict[tuple, HIRInst] = {}
    kept = []
    for inst in block.insts:
        inst.args = tuple(_resolve(a, replaced) for a in inst.args)
        op = inst.op

        # Constant folding.
        if op == "alu":
            args = inst.args
            if all(a is not None and a.op == "const" for a in args):
                fold = None
                if len(args) == 1 and inst.aux == "neg":
                    fold = -args[0].imm
                elif len(args) == 2 and inst.aux in _FOLDABLE:
                    fold = _FOLDABLE[inst.aux](args[0].imm, args[1].imm)
                elif len(args) == 2 and inst.aux in ("div", "rem") \
                        and args[1].imm != 0:
                    a, b = args[0].imm, args[1].imm
                    q = abs(a) // abs(b)
                    q = q if (a >= 0) == (b >= 0) else -q
                    fold = q if inst.aux == "div" else a - q * b
                if fold is not None:
                    inst.op = "const"
                    inst.imm = fold
                    inst.args = ()
                    inst.aux = None
                    stats["folded"] += 1

        # Redundant-load elimination.
        key = None
        if op == "getfield":
            key = ("gf", id(inst.args[0]), inst.aux)
        elif op == "getstatic":
            key = ("gs", inst.aux[1])
        elif op == "aload":
            key = ("al", id(inst.args[0]), id(inst.args[1]), inst.aux)
        elif op == "len":
            key = ("ln", id(inst.args[0]))
        if key is not None:
            prior = available.get(key)
            if prior is not None:
                replaced[inst.id] = prior
                stats["cse"] += 1
                continue  # drop the duplicate load
            available[key] = inst

        # Invalidation.
        if op == "putfield":
            field = inst.aux
            available = {k: v for k, v in available.items()
                         if not (k[0] == "gf" and k[2] is field)}
        elif op == "putstatic":
            field = inst.aux[1]
            available = {k: v for k, v in available.items()
                         if not (k[0] == "gs" and k[1] is field)}
        elif op == "astore":
            kind = inst.aux
            available = {k: v for k, v in available.items()
                         if not (k[0] == "al" and k[3] == kind)}
        elif op in ("call", "callv"):
            available.clear()

        kept.append(inst)
    block.insts = kept


def _dce(func: HIRFunction, stats: Dict[str, int]) -> None:
    used = set()
    stack = []
    for inst in func.all_insts():
        if inst.op in EFFECTFUL_OPS:
            stack.append(inst)
    while stack:
        inst = stack.pop()
        if inst.id in used:
            continue
        used.add(inst.id)
        for arg in inst.args:
            if arg is not None and arg.id not in used:
                stack.append(arg)
    for block in func.blocks:
        before = len(block.insts)
        block.insts = [i for i in block.insts
                       if i.op in EFFECTFUL_OPS or i.id in used
                       or i.op == "param"]
        stats["dce"] += before - len(block.insts)


def optimize(func: HIRFunction) -> Dict[str, int]:
    """Run all passes in place; returns per-pass statistics."""
    stats = {"folded": 0, "cse": 0, "dce": 0}
    replaced: Dict[int, HIRInst] = {}
    for block in func.blocks:
        _fold_and_cse_block(block, replaced, stats)
    # Rewrite remaining stale operands (CSE may cross already-visited uses).
    for inst in func.all_insts():
        inst.args = tuple(_resolve(a, replaced) for a in inst.args)
    _dce(func, stats)
    return stats
