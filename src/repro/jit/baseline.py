"""The baseline compiler.

Mirrors Jikes RVM's "simple and quick" baseline compiler (section 3.2):
each bytecode is expanded in isolation, with the operand stack and the
locals kept in *frame memory* (``LDF``/``STF`` traffic).  The code is
fast to produce and slow to run — the gap the adaptive optimization
system exists to close.

Because the expansion is per-bytecode, the machine-code map (one
bytecode index per machine instruction) falls out for free — the paper
notes this mapping "is already performed for methods that are compiled
with the baseline compiler" (section 4.2).  GC maps are emitted at GC
points (allocations and calls) from the bytecode type analysis.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.hw.isa import (
    MInst,
    M_ALOAD, M_ALU, M_ALUI, M_ASTORE, M_BC, M_BR, M_CALL, M_CALLV,
    M_GETF, M_GETSTATIC, M_LDF, M_LEN, M_MOVI, M_NEW, M_NEWARR, M_PUTF,
    M_PUTSTATIC, M_RET, M_STF,
)
from repro.jit.codecache import LEVEL_BASELINE, CompiledMethod
from repro.vm.bytecode import T_REF, Analysis, analyze
from repro.vm.model import MethodInfo

_BINOPS = {
    "iadd": "add", "isub": "sub", "imul": "mul", "idiv": "div",
    "irem": "rem", "iand": "and", "ior": "or", "ixor": "xor",
    "ishl": "shl", "ishr": "shr",
}


def _ref_map(analysis: Analysis, pc: int, max_locals: int) -> Tuple:
    """GC map at bytecode ``pc``: every ref-typed local and stack slot."""
    state = analysis.state_at(pc)
    roots = []
    for i, t in enumerate(state.locals):
        if t == T_REF:
            roots.append(("s", i))
    for j, t in enumerate(state.stack):
        if t == T_REF:
            roots.append(("s", max_locals + j))
    return tuple(roots)


def compile_baseline(method: MethodInfo, *, telemetry=None) -> CompiledMethod:
    """Compile ``method`` with the baseline strategy."""
    if telemetry is not None:
        metrics = telemetry.metrics
        metrics.counter(
            "jit.compilations", "methods compiled, by level"
        ).labels("baseline").inc()
        metrics.counter(
            "jit.compiled_bytecodes", "bytecodes compiled, by level"
        ).labels("baseline").inc(len(method.code))
    analysis = analyze(method)
    code = method.code
    max_locals = method.max_locals
    out: List[MInst] = []
    bc_starts: List[int] = [0] * len(code)
    gc_maps: Dict[int, Tuple] = {}
    fixups: List[Tuple[int, int]] = []  # (machine pc, target bytecode index)
    max_args = method.num_args

    def slot(depth: int) -> int:
        return max_locals + depth

    def emit(op: int, bci: int, **kw) -> MInst:
        inst = MInst(op, bc_index=bci, **kw)
        out.append(inst)
        return inst

    for bci, instr in enumerate(code):
        bc_starts[bci] = len(out)
        if analysis.states[bci] is None:
            continue  # unreachable bytecode: no code, no targets
        d = analysis.stack_depth(bci)
        op = instr.op

        if op == "iconst":
            emit(M_MOVI, bci, rd=0, imm=instr.a)
            emit(M_STF, bci, rs1=0, imm=slot(d))
        elif op == "aconst_null":
            emit(M_MOVI, bci, rd=0, imm=None)
            emit(M_STF, bci, rs1=0, imm=slot(d))
        elif op in ("iload", "rload"):
            emit(M_LDF, bci, rd=0, imm=instr.a)
            emit(M_STF, bci, rs1=0, imm=slot(d))
        elif op in ("istore", "rstore"):
            emit(M_LDF, bci, rd=0, imm=slot(d - 1))
            emit(M_STF, bci, rs1=0, imm=instr.a)
        elif op in _BINOPS:
            emit(M_LDF, bci, rd=0, imm=slot(d - 2))
            emit(M_LDF, bci, rd=1, imm=slot(d - 1))
            emit(M_ALU, bci, rd=0, rs1=0, rs2=1, aux=_BINOPS[op])
            emit(M_STF, bci, rs1=0, imm=slot(d - 2))
        elif op == "ineg":
            emit(M_LDF, bci, rd=0, imm=slot(d - 1))
            emit(M_ALUI, bci, rd=0, rs1=0, aux="neg")
            emit(M_STF, bci, rs1=0, imm=slot(d - 1))
        elif op == "dup":
            emit(M_LDF, bci, rd=0, imm=slot(d - 1))
            emit(M_STF, bci, rs1=0, imm=slot(d))
        elif op == "pop":
            pass  # depth bookkeeping only
        elif op == "swap":
            emit(M_LDF, bci, rd=0, imm=slot(d - 2))
            emit(M_LDF, bci, rd=1, imm=slot(d - 1))
            emit(M_STF, bci, rs1=1, imm=slot(d - 2))
            emit(M_STF, bci, rs1=0, imm=slot(d - 1))
        elif op == "goto":
            fixups.append((len(out), instr.a))
            emit(M_BR, bci)
        elif op == "if_icmp":
            emit(M_LDF, bci, rd=0, imm=slot(d - 2))
            emit(M_LDF, bci, rd=1, imm=slot(d - 1))
            fixups.append((len(out), instr.b))
            emit(M_BC, bci, rs1=0, rs2=1, aux=instr.a)
        elif op == "ifz":
            emit(M_LDF, bci, rd=0, imm=slot(d - 1))
            fixups.append((len(out), instr.b))
            emit(M_BC, bci, rs1=0, aux=instr.a)
        elif op in ("ifnull", "ifnonnull"):
            emit(M_LDF, bci, rd=0, imm=slot(d - 1))
            fixups.append((len(out), instr.a))
            emit(M_BC, bci, rs1=0, aux=op[2:])
        elif op == "getfield":
            emit(M_LDF, bci, rd=0, imm=slot(d - 1))
            emit(M_GETF, bci, rd=1, rs1=0, aux=instr.a)
            emit(M_STF, bci, rs1=1, imm=slot(d - 1))
        elif op == "putfield":
            emit(M_LDF, bci, rd=0, imm=slot(d - 2))
            emit(M_LDF, bci, rd=1, imm=slot(d - 1))
            emit(M_PUTF, bci, rs1=0, rs2=1, aux=instr.a)
        elif op == "getstatic":
            emit(M_GETSTATIC, bci, rd=0,
                 aux=(instr.a.declaring_class, instr.a))
            emit(M_STF, bci, rs1=0, imm=slot(d))
        elif op == "putstatic":
            emit(M_LDF, bci, rd=0, imm=slot(d - 1))
            emit(M_PUTSTATIC, bci, rs1=0,
                 aux=(instr.a.declaring_class, instr.a))
        elif op == "new":
            gc_maps[len(out)] = _ref_map(analysis, bci, max_locals)
            emit(M_NEW, bci, rd=0, aux=instr.a)
            emit(M_STF, bci, rs1=0, imm=slot(d))
        elif op == "newarray":
            emit(M_LDF, bci, rd=0, imm=slot(d - 1))
            gc_maps[len(out)] = _ref_map(analysis, bci, max_locals)
            emit(M_NEWARR, bci, rd=1, rs1=0, aux=instr.a)
            emit(M_STF, bci, rs1=1, imm=slot(d - 1))
        elif op == "arraylength":
            emit(M_LDF, bci, rd=0, imm=slot(d - 1))
            emit(M_LEN, bci, rd=1, rs1=0)
            emit(M_STF, bci, rs1=1, imm=slot(d - 1))
        elif op == "arrload":
            emit(M_LDF, bci, rd=0, imm=slot(d - 2))
            emit(M_LDF, bci, rd=1, imm=slot(d - 1))
            emit(M_ALOAD, bci, rd=2, rs1=0, rs2=1, aux=instr.a)
            emit(M_STF, bci, rs1=2, imm=slot(d - 2))
        elif op == "arrstore":
            emit(M_LDF, bci, rd=0, imm=slot(d - 3))
            emit(M_LDF, bci, rd=1, imm=slot(d - 2))
            emit(M_LDF, bci, rd=2, imm=slot(d - 1))
            emit(M_ASTORE, bci, rs1=0, rs2=1, rd=2, aux=instr.a)
        elif op in ("invokestatic", "invokevirtual"):
            if op == "invokestatic":
                target = instr.a
            else:
                target = instr.a.method(instr.b)
            n = target.num_args
            max_args = max(max_args, n)
            for k in range(n):
                emit(M_LDF, bci, rd=k, imm=slot(d - n + k))
            gc_maps[len(out)] = _ref_map(analysis, bci, max_locals)
            ret_reg = 0 if target.return_kind != "void" else None
            if op == "invokestatic":
                emit(M_CALL, bci, rd=ret_reg, imm=tuple(range(n)), aux=target)
            else:
                emit(M_CALLV, bci, rd=ret_reg, rs1=0, imm=tuple(range(n)),
                     aux=(instr.a, instr.a.vtable_slot(instr.b)))
            if ret_reg is not None:
                emit(M_STF, bci, rs1=0, imm=slot(d - n))
        elif op == "return":
            emit(M_RET, bci)
        elif op in ("ireturn", "rreturn"):
            emit(M_LDF, bci, rd=0, imm=slot(d - 1))
            emit(M_RET, bci, rs1=0)
        elif op == "nop":
            pass
        else:  # pragma: no cover - verifier rejects unknown ops
            raise ValueError(f"baseline compiler: unknown bytecode {op}")

    for machine_pc, target_bci in fixups:
        out[machine_pc].imm = bc_starts[target_bci]

    # Prologue: incoming arguments arrive in registers 0..n-1; store them
    # into their local slots.  Prepending keeps branch targets valid only
    # because we patch them afterwards, so instead we build the prologue
    # separately and shift all code offsets.
    prologue: List[MInst] = []
    for i in range(method.num_args):
        prologue.append(MInst(M_STF, rs1=i, imm=i, bc_index=0))
    shift = len(prologue)
    if shift:
        for inst in out:
            if inst.op in (M_BR, M_BC):
                inst.imm += shift
        gc_maps = {pc + shift: roots for pc, roots in gc_maps.items()}
        out = prologue + out

    frame_words = max_locals + analysis.max_stack
    reg_count = max(4, max_args + 1)
    return CompiledMethod(method, LEVEL_BASELINE, out, reg_count,
                          frame_words, gc_maps)
