"""HIR -> machine code lowering for the optimizing compiler.

Each HIR instruction lowers to (at most) one machine instruction whose
destination is the HIR value's virtual register; the per-frame register
file of the simulated CPU is wide enough that no spilling is required.
Block-boundary sync moves are sequentialized as *parallel moves* (a
scratch register breaks cycles such as the classic two-register swap).

Every emitted instruction carries its bytecode index (the extended
machine-code map of section 4.2) and its HIR instruction id, which is
how a sampled EIP resolves to an instructions-of-interest entry.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.hw.isa import (
    MInst,
    M_ALOAD, M_ALU, M_ALUI, M_ASTORE, M_BC, M_BR, M_CALL, M_CALLV,
    M_GETF, M_GETSTATIC, M_LEN, M_MOV, M_MOVI, M_NEW, M_NEWARR,
    M_NULLCHK, M_PUTF, M_PUTSTATIC, M_RET,
)
from repro.jit.hir import HIRFunction, HIRInst


def sequentialize_moves(pairs: List[Tuple[int, int]],
                        scratch: int) -> List[Tuple[int, int]]:
    """Order parallel moves ``dest <- src`` so no source is clobbered.

    Standard algorithm: repeatedly emit moves whose destination is not a
    pending source; break remaining cycles through ``scratch``.
    Self-moves are dropped.

    >>> sequentialize_moves([(0, 1), (1, 0)], scratch=9)
    [(9, 1), (1, 0), (0, 9)]
    """
    pending = [(d, s) for d, s in pairs if d != s]
    out: List[Tuple[int, int]] = []
    while pending:
        sources = {s for _, s in pending}
        progress = False
        for i, (d, s) in enumerate(pending):
            if d not in sources:
                out.append((d, s))
                del pending[i]
                progress = True
                break
        if not progress:
            # Cycle: rotate through the scratch register.
            d, s = pending[0]
            out.append((scratch, s))
            # Every pending source equal to s now lives in scratch.
            pending = [(pd, scratch if ps == s else ps) for pd, ps in pending]
    return out


def lower(func: HIRFunction) -> Tuple[List[MInst], int]:
    """Lower ``func``; returns (machine code, register count incl. scratch)."""
    scratch = func.vreg_count
    reg_count = func.vreg_count + 1
    out: List[MInst] = []
    block_start: Dict[int, int] = {}
    fixups: List[Tuple[int, int]] = []  # (machine pc, target block index)

    for block in func.blocks:
        block_start[block.index] = len(out)
        pending_moves: List[Tuple[Tuple[int, int], HIRInst]] = []

        def flush_moves() -> None:
            if not pending_moves:
                return
            pairs = [p for p, _ in pending_moves]
            info = {p: inst for p, inst in pending_moves}
            for d, s in sequentialize_moves(pairs, scratch):
                src_inst = info.get((d, s))
                bci = src_inst.bc_index if src_inst is not None else -1
                iid = src_inst.id if src_inst is not None else None
                out.append(MInst(M_MOV, rd=d, rs1=s, bc_index=bci, ir_id=iid))
            pending_moves.clear()

        for inst in block.insts:
            op = inst.op
            if op == "param":
                continue
            if op == "move":
                if inst.aux is None:
                    # Shield copy into a temp: safe to emit immediately
                    # (temps are never parallel-move destinations).
                    out.append(MInst(M_MOV, rd=inst.vreg,
                                     rs1=inst.args[0].vreg,
                                     bc_index=inst.bc_index, ir_id=inst.id))
                else:
                    pending_moves.append(
                        ((inst.vreg, inst.args[0].vreg), inst))
                continue
            # Any non-move instruction flushes accumulated sync moves
            # (they are only ever emitted directly before terminators).
            flush_moves()
            kw = dict(bc_index=inst.bc_index, ir_id=inst.id)
            if op == "const":
                out.append(MInst(M_MOVI, rd=inst.vreg, imm=inst.imm, **kw))
            elif op == "alu":
                if len(inst.args) == 1:
                    out.append(MInst(M_ALUI, rd=inst.vreg,
                                     rs1=inst.args[0].vreg, aux=inst.aux,
                                     **kw))
                else:
                    out.append(MInst(M_ALU, rd=inst.vreg,
                                     rs1=inst.args[0].vreg,
                                     rs2=inst.args[1].vreg, aux=inst.aux,
                                     **kw))
            elif op == "getfield":
                out.append(MInst(M_GETF, rd=inst.vreg,
                                 rs1=inst.args[0].vreg, aux=inst.aux, **kw))
            elif op == "putfield":
                out.append(MInst(M_PUTF, rs1=inst.args[0].vreg,
                                 rs2=inst.args[1].vreg, aux=inst.aux, **kw))
            elif op == "getstatic":
                out.append(MInst(M_GETSTATIC, rd=inst.vreg, aux=inst.aux,
                                 **kw))
            elif op == "putstatic":
                out.append(MInst(M_PUTSTATIC, rs1=inst.args[0].vreg,
                                 aux=inst.aux, **kw))
            elif op == "new":
                out.append(MInst(M_NEW, rd=inst.vreg, aux=inst.aux, **kw))
            elif op == "newarray":
                out.append(MInst(M_NEWARR, rd=inst.vreg,
                                 rs1=inst.args[0].vreg, aux=inst.aux, **kw))
            elif op == "aload":
                out.append(MInst(M_ALOAD, rd=inst.vreg,
                                 rs1=inst.args[0].vreg,
                                 rs2=inst.args[1].vreg, aux=inst.aux, **kw))
            elif op == "astore":
                out.append(MInst(M_ASTORE, rs1=inst.args[0].vreg,
                                 rs2=inst.args[1].vreg,
                                 rd=inst.args[2].vreg, aux=inst.aux, **kw))
            elif op == "len":
                out.append(MInst(M_LEN, rd=inst.vreg,
                                 rs1=inst.args[0].vreg, **kw))
            elif op == "call":
                rd = inst.vreg if inst.typ != "v" else None
                out.append(MInst(M_CALL, rd=rd,
                                 imm=tuple(a.vreg for a in inst.args),
                                 aux=inst.aux, **kw))
            elif op == "callv":
                rd = inst.vreg if inst.typ != "v" else None
                out.append(MInst(M_CALLV, rd=rd, rs1=inst.args[0].vreg,
                                 imm=tuple(a.vreg for a in inst.args),
                                 aux=inst.aux, **kw))
            elif op == "nullcheck":
                out.append(MInst(M_NULLCHK, rs1=inst.args[0].vreg, **kw))
            elif op == "ret":
                rs1 = inst.args[0].vreg if inst.args else None
                out.append(MInst(M_RET, rs1=rs1, **kw))
            elif op == "br":
                fixups.append((len(out), inst.imm))
                out.append(MInst(M_BR, **kw))
            elif op == "bc":
                rs2 = inst.args[1].vreg if len(inst.args) > 1 else None
                fixups.append((len(out), inst.imm))
                out.append(MInst(M_BC, rs1=inst.args[0].vreg, rs2=rs2,
                                 aux=inst.aux, **kw))
            else:  # pragma: no cover
                raise ValueError(f"lowering: unknown HIR op {op}")
        flush_moves()

    for pc, block_index in fixups:
        out[pc].imm = block_start[block_index]
    return out, reg_count
