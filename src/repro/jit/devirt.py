"""Class-hierarchy-based devirtualization.

A virtual call whose vtable slot has a *single* reachable implementation
across the loaded class hierarchy can be converted into a direct call:
the object-header load (vtable fetch) disappears — one data access saved
per invocation — at the price of an explicit null check that preserves
the fault semantics of the original dispatch.

This mirrors what Jikes RVM's opt compiler does with its class
hierarchy; because our guest has no dynamic class loading *during* a
run, no invalidation/guarding machinery is needed (the paper's VM would
deoptimize on conflicting class load).
"""

from __future__ import annotations

from typing import Dict

from repro.jit.hir import HIRFunction, HIRInst


def devirtualize(func: HIRFunction) -> int:
    """Convert monomorphic ``callv`` sites to direct calls in place.

    Returns the number of devirtualized sites.  Each converted site gains
    a ``nullcheck`` on the receiver directly before the call.
    """
    converted = 0
    next_id = 1 + max((inst.id for inst in func.all_insts()), default=0)
    for block in func.blocks:
        out = []
        for inst in block.insts:
            if inst.op == "callv":
                klass, slot = inst.aux
                target = klass.monomorphic_target(slot)
                if target is not None:
                    receiver = inst.args[0]
                    check = HIRInst(next_id, "nullcheck", (receiver,),
                                    bc_index=inst.bc_index)
                    next_id += 1
                    out.append(check)
                    inst.op = "call"
                    inst.aux = target
                    converted += 1
            out.append(inst)
        block.insts = out
    return converted
