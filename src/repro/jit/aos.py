"""The adaptive optimization system (AOS).

Mirrors Jikes RVM's architecture (section 3.2): every method is first
compiled with the quick baseline compiler; a timer samples the
top-of-stack method at regular intervals; methods whose sample count
crosses a threshold are evaluated with a static cost/benefit model and
recompiled with the optimizing compiler when the expected future
savings exceed the compile cost.

The paper's evaluation uses a *pseudo-adaptive* configuration: "each
program runs with a pre-generated compilation plan", eliminating AOS
nondeterminism.  :class:`CompilationPlan` provides that mode: a plan
recorded from one run (or authored by a workload) is replayed, opt-
compiling exactly the listed methods up front.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.core.config import JITConfig
from repro.vm.model import MethodInfo


class CompilationPlan:
    """A pre-generated compilation plan (pseudo-adaptive mode)."""

    def __init__(self, opt_methods: Optional[List[str]] = None):
        #: Qualified names ("Class.method") to opt-compile at startup.
        self.opt_methods: List[str] = list(opt_methods or [])

    def add(self, method: "MethodInfo | str") -> "CompilationPlan":
        name = method if isinstance(method, str) else method.qualified_name
        if name not in self.opt_methods:
            self.opt_methods.append(name)
        return self

    def __contains__(self, method: MethodInfo) -> bool:
        return method.qualified_name in self.opt_methods

    def __len__(self) -> int:
        return len(self.opt_methods)


class AdaptiveOptimizationSystem:
    """Timer-sampled hotness + cost/benefit recompilation decisions.

    The AOS does not compile anything itself; it *decides*.  The VM
    registers :meth:`sample` on the virtual-time timer and asks
    :meth:`poll_decisions` for methods to hand to the opt compiler.
    """

    def __init__(self, config: JITConfig):
        self.config = config
        self.samples: Dict[MethodInfo, int] = {}
        self.total_samples = 0
        self._pending: List[MethodInfo] = []
        self._decided: Set[MethodInfo] = set()

    def sample(self, method: Optional[MethodInfo]) -> None:
        """Record one top-of-stack timer sample."""
        self.total_samples += 1
        if method is None:
            return
        count = self.samples.get(method, 0) + 1
        self.samples[method] = count
        if method in self._decided:
            return
        if count >= self.config.hot_samples and self._worth_optimizing(method, count):
            self._decided.add(method)
            self._pending.append(method)

    def decision_stats(self, method: MethodInfo) -> Tuple[int, float, float]:
        """The cost/benefit arithmetic for ``method`` *right now*:
        ``(sample_count, estimated_benefit, estimated_cost)`` in cycles.

        This is the exact justification a recompilation decision rests
        on, exposed so the decision-lineage ledger can record it.
        """
        cfg = self.config
        count = self.samples.get(method, 0)
        past_cycles = count * cfg.aos_timer_cycles
        future_cycles = past_cycles
        benefit = future_cycles * (1.0 - 1.0 / cfg.opt_speedup)
        cost = float(cfg.opt_cost_per_bc * len(method.code))
        return count, benefit, cost

    def _worth_optimizing(self, method: MethodInfo, count: int) -> bool:
        """Jikes-style static cost/benefit model.

        Estimated future time in the method is assumed equal to the time
        observed so far (the standard "as much future as past"
        assumption); the benefit is the fraction saved by the opt
        compiler's speedup; the cost is proportional to bytecode size.
        """
        _, benefit, cost = self.decision_stats(method)
        return benefit > cost

    def poll_decisions(self) -> List[MethodInfo]:
        """Drain methods selected for opt recompilation."""
        pending, self._pending = self._pending, []
        return pending

    def recorded_plan(self) -> CompilationPlan:
        """Export the decisions taken so far as a pseudo-adaptive plan."""
        plan = CompilationPlan()
        for method in self._decided:
            plan.add(method)
        return plan

    def hotness(self, method: MethodInfo) -> float:
        """Fraction of samples attributed to ``method``."""
        if self.total_samples == 0:
            return 0.0
        return self.samples.get(method, 0) / self.total_samples
