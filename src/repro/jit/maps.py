"""Encoded-size model of the compiler map data structures (Table 2).

The paper measures the *space overhead* of extending the bytecode
mapping from GC points to every machine instruction: machine-code maps
come out "4 to 5 times as large as the GC maps", and the whole boot
image grows by ~20% (45 MB -> 54 MB).  The paper also notes the maps
"reused the existing implementation for GC maps" and could be
custom-tailored — i.e. the encoding is deliberately the fat Jikes one.

We model the same encoding costs per entry:

* machine code: 4 bytes per instruction (our fixed-width ISA),
* GC maps: a header per GC point plus one byte per recorded root,
* machine-code maps: one entry per machine instruction, each carrying
  the machine-code offset and the bytecode index in the same
  table-per-method format the GC maps use.

The absolute constants are calibrated so the *ratios* of Table 2 hold
(GC maps ~0.5x machine code, MC maps ~2.5x machine code).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.hw.isa import INSTRUCTION_BYTES
from repro.jit.codecache import CompiledMethod

#: Per-method table header (method handle, bounds, index structure).
METHOD_TABLE_HEADER_BYTES = 24
#: Per-GC-point header: machine-code offset, bytecode index, root count,
#: and the reference-map index word (the Jikes encoding is famously fat;
#: calibrated so GC maps ~0.5x machine code, as in Table 2).
GC_POINT_HEADER_BYTES = 44
#: Per root descriptor (register/slot id + kind tag).
GC_ROOT_ENTRY_BYTES = 4
#: Per machine instruction in the extended map: machine-code offset,
#: bytecode index, and the IR-instruction handle the monitor counts on
#: (calibrated so MC maps ~2.5x machine code / 4-5x GC maps).
MC_MAP_ENTRY_BYTES = 10


@dataclass
class MapSizes:
    """Byte sizes of one method's (or one corpus') compiler metadata."""

    machine_code: int = 0
    gc_maps: int = 0
    mc_maps: int = 0

    def __add__(self, other: "MapSizes") -> "MapSizes":
        return MapSizes(self.machine_code + other.machine_code,
                        self.gc_maps + other.gc_maps,
                        self.mc_maps + other.mc_maps)

    def kb(self) -> "tuple[int, int, int]":
        """(machine code, GC maps, MC maps) rounded to whole KB."""
        return (round(self.machine_code / 1024),
                round(self.gc_maps / 1024),
                round(self.mc_maps / 1024))


def method_map_sizes(cm: CompiledMethod) -> MapSizes:
    """Encoded sizes of one compiled method's code and maps."""
    machine_code = len(cm.code) * INSTRUCTION_BYTES
    gc_maps = METHOD_TABLE_HEADER_BYTES
    for roots in cm.gc_maps.values():
        gc_maps += GC_POINT_HEADER_BYTES + GC_ROOT_ENTRY_BYTES * len(roots)
    mc_maps = METHOD_TABLE_HEADER_BYTES + MC_MAP_ENTRY_BYTES * len(cm.code)
    return MapSizes(machine_code, gc_maps, mc_maps)


def corpus_map_sizes(methods: Iterable[CompiledMethod]) -> MapSizes:
    """Aggregate sizes over a set of compiled methods (one benchmark's
    application + library classes, or the boot image corpus)."""
    total = MapSizes()
    for cm in methods:
        total = total + method_map_sizes(cm)
    return total
