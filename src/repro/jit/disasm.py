"""Disassembler and listing utilities for compiled guest code.

Formats the three levels a sample travels through — bytecode, HIR, and
machine code — side by side with the map information (bytecode index,
HIR id, GC maps, interest pairs), which makes the EIP-resolution
pipeline of section 4.2 inspectable by eye.

Used by ``python -m repro disasm <benchmark> <Class.method>`` and by the
examples; handy when debugging compiler changes.
"""

from __future__ import annotations

from typing import List, Optional

from repro.hw.isa import OP_NAMES, M_BC, M_BR, M_CALL, M_CALLV
from repro.jit.codecache import LEVEL_OPT, CompiledMethod
from repro.vm.bytecode import BRANCH_OPS
from repro.vm.model import ClassInfo, FieldInfo, MethodInfo


def _operand(value) -> str:
    if value is None:
        return ""
    if isinstance(value, FieldInfo):
        return value.qualified_name
    if isinstance(value, MethodInfo):
        return value.qualified_name
    if isinstance(value, ClassInfo):
        return value.name
    if isinstance(value, tuple):
        return "(" + ", ".join(_operand(v) for v in value) + ")"
    return repr(value)


def format_bytecode(method: MethodInfo) -> str:
    """Numbered bytecode listing with resolved operands."""
    lines = [f"bytecode of {method.qualified_name} "
             f"(args={method.arg_kinds}, returns={method.return_kind}, "
             f"max_locals={method.max_locals}):"]
    for index, instr in enumerate(method.code):
        operands = " ".join(
            _operand(v) for v in (instr.a, instr.b) if v is not None)
        marker = "->" if instr.op in BRANCH_OPS else "  "
        lines.append(f"  {index:>4d} {marker} {instr.op:<12s} {operands}")
    return "\n".join(lines)


def format_machine_code(cm: CompiledMethod,
                        interest: Optional[dict] = None) -> str:
    """Machine-code listing with EIPs, maps, and interest annotations.

    ``interest`` is the method's instructions-of-interest table
    (ir_id -> FieldInfo); matching instructions are flagged with the
    field their misses would be attributed to.
    """
    kind = "opt" if cm.level == LEVEL_OPT else "baseline"
    lines = [f"{kind} code of {cm.method.qualified_name} "
             f"@ {cm.code_addr:#x} ({len(cm.code)} instructions, "
             f"{cm.reg_count} regs, {cm.frame_words} frame words):"]
    for pc, inst in enumerate(cm.code):
        eip = cm.eip_of_pc(pc)
        fields = []
        if inst.rd is not None:
            fields.append(f"r{inst.rd} <-")
        for reg in (inst.rs1, inst.rs2):
            if reg is not None:
                fields.append(f"r{reg}")
        if inst.op in (M_BR, M_BC):
            fields.append(f"-> pc {inst.imm}")
        elif inst.imm is not None:
            fields.append(f"#{inst.imm!r}" if not isinstance(inst.imm, tuple)
                          else f"args={inst.imm}")
        if inst.aux is not None:
            fields.append(_operand(inst.aux))
        annotations = []
        if pc in cm.gc_maps:
            roots = ",".join(f"{k}{i}" for k, i in cm.gc_maps[pc])
            annotations.append(f"[gc: {roots or 'none'}]")
        if interest and inst.ir_id in interest:
            annotations.append(
                f"[interest -> {interest[inst.ir_id].qualified_name}]")
        bc = f"bc={inst.bc_index}" if inst.bc_index >= 0 else ""
        lines.append(
            f"  {eip:#010x} {OP_NAMES[inst.op]:<10s} "
            f"{' '.join(fields):<40s} {bc:<8s} {' '.join(annotations)}"
            .rstrip())
    return "\n".join(lines)


def format_compiled_method(cm: CompiledMethod,
                           interest: Optional[dict] = None,
                           with_bytecode: bool = True) -> str:
    """Full listing: bytecode (if requested) plus annotated machine code."""
    parts = []
    if with_bytecode:
        parts.append(format_bytecode(cm.method))
    parts.append(format_machine_code(cm, interest))
    return "\n\n".join(parts)
