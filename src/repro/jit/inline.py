"""Bytecode-level method inlining for the optimizing compiler.

Jikes RVM's optimizing compiler inlines aggressively (the related work
discusses tuning this online, Lau et al. [20]); for the reproduction,
inlining matters for a subtler reason too: the instructions-of-interest
analysis (section 5.2) walks use-def edges *within* a method, so an
access path split across a getter — ``p.getY().i`` — only yields its
(S, f) pair after the getter body has been inlined into the caller.

The pass works on verified bytecode before HIR construction:

* only ``invokestatic`` call sites are inlined (virtual dispatch would
  need a class-hierarchy analysis and guards),
* callees must be small (``max_callee_bytecodes``), non-recursive, and
  the total growth is budgeted (``max_growth``),
* the callee's locals are relocated above the caller's frame; its
  returns become jumps to the instruction after the splice, leaving the
  return value on the operand stack — exactly where the call would have
  put it.

The resulting code is re-verified by the HIR builder's analysis, so a
bad splice cannot reach execution.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.vm.bytecode import BRANCH_OPS, Instr, branch_target
from repro.vm.model import MethodInfo

#: Callees above this bytecode count are never inlined.
MAX_CALLEE_BYTECODES = 24
#: The inlined method may grow to at most this multiple of its own size.
MAX_GROWTH = 4.0

_LOCAL_OPS = {"iload", "istore", "rload", "rstore"}


def _set_branch_target(instr: Instr, target: int) -> None:
    if instr.op in ("goto", "ifnull", "ifnonnull"):
        instr.a = target
    else:  # if_icmp, ifz
        instr.b = target


def can_inline(caller: MethodInfo, callee: MethodInfo,
               max_callee_bytecodes: int = MAX_CALLEE_BYTECODES) -> bool:
    """Is ``callee`` a safe, profitable inline candidate at this site?"""
    if callee is caller:
        return False
    if not callee.is_static:
        return False
    if len(callee.code) > max_callee_bytecodes:
        return False
    for instr in callee.code:
        # No nested calls: keeps the pass depth-1 and trivially
        # non-recursive (a self-call inside the callee stays a call).
        if instr.op in ("invokestatic", "invokevirtual"):
            return False
    return True


class _Splicer:
    """Copies one callee body into the output stream."""

    def __init__(self, out: List[Instr], callee: MethodInfo,
                 local_base: int):
        self.out = out
        self.callee = callee
        self.local_base = local_base
        #: callee bytecode index -> new index in ``out``.
        self.index_map: Dict[int, int] = {}
        self.fixups: List[Tuple[Instr, int]] = []   # (instr, callee target)
        self.end_jumps: List[Instr] = []

    def splice(self, call_site_returns: str) -> None:
        callee = self.callee
        base = self.local_base
        out = self.out
        # Prologue: the arguments sit on the operand stack, last on top;
        # store them into the relocated locals in reverse order.
        for k in reversed(range(callee.num_args)):
            kind = callee.arg_kinds[k]
            op = "rstore" if kind == "ref" else "istore"
            out.append(Instr(op, base + k))
        last = len(callee.code) - 1
        for idx, instr in enumerate(callee.code):
            self.index_map[idx] = len(out)
            op = instr.op
            if op in ("return", "ireturn", "rreturn"):
                if idx == last:
                    # Tail return: fall through into the caller.  This
                    # also keeps single-exit callees (getters!) free of
                    # block splits, so use-def chains — and therefore
                    # the instructions-of-interest analysis — flow
                    # across the inlined body.
                    continue
                # The value (if any) is already on the stack: jump to the
                # end of the splice.
                jump = Instr("goto", None)
                self.end_jumps.append(jump)
                out.append(jump)
            elif op in _LOCAL_OPS:
                out.append(Instr(op, instr.a + base))
            elif op in BRANCH_OPS:
                copy = Instr(op, instr.a, instr.b)
                self.fixups.append((copy, branch_target(instr)))
                out.append(copy)
            else:
                out.append(Instr(op, instr.a, instr.b))

    def finish(self) -> None:
        end = len(self.out)
        for instr, callee_target in self.fixups:
            _set_branch_target(instr, self.index_map[callee_target])
        for jump in self.end_jumps:
            jump.a = end


def inline_bytecode(method: MethodInfo,
                    max_callee_bytecodes: int = MAX_CALLEE_BYTECODES,
                    max_growth: float = MAX_GROWTH,
                    ) -> Tuple[List[Instr], int, int]:
    """Inline eligible call sites of ``method``.

    Returns ``(new code, new max_locals, inlined site count)``.  The
    original method is left untouched (instructions are copied).
    """
    code = method.code
    budget = int(len(code) * max_growth)
    out: List[Instr] = []
    old2new: List[int] = [0] * len(code)
    caller_branches: List[Tuple[Instr, int]] = []
    extra_locals = 0
    inlined = 0

    for idx, instr in enumerate(code):
        old2new[idx] = len(out)
        op = instr.op
        if op == "invokestatic" and len(out) < budget \
                and can_inline(method, instr.a, max_callee_bytecodes):
            callee: MethodInfo = instr.a
            # All splice sites share the slot range right above the
            # caller's frame: inlined locals are never live across
            # sites, so reuse is safe (and keeps frames small).
            splicer = _Splicer(out, callee, local_base=method.max_locals)
            splicer.splice(callee.return_kind)
            splicer.finish()
            extra_locals = max(extra_locals, callee.max_locals)
            inlined += 1
        elif op in BRANCH_OPS:
            copy = Instr(op, instr.a, instr.b)
            caller_branches.append((copy, branch_target(instr)))
            out.append(copy)
        else:
            out.append(Instr(op, instr.a, instr.b))

    for instr, old_target in caller_branches:
        _set_branch_target(instr, old2new[old_target])
    return out, method.max_locals + extra_locals, inlined


def inlined_view(method: MethodInfo,
                 max_callee_bytecodes: int = MAX_CALLEE_BYTECODES,
                 max_growth: float = MAX_GROWTH) -> Optional[MethodInfo]:
    """A shadow MethodInfo with inlined code, or None if nothing inlined.

    The shadow is what the HIR builder consumes; the produced
    CompiledMethod still belongs to the original method.  Bytecode
    indices in the machine-code map then refer to the *inlined* stream
    (the call site's expansion), mirroring how real inlining maps
    machine code back through inline frames.
    """
    new_code, new_locals, count = inline_bytecode(
        method, max_callee_bytecodes, max_growth)
    if count == 0:
        return None
    shadow = MethodInfo(
        method.name, method.declaring_class, is_static=method.is_static,
        arg_kinds=list(method.arg_kinds), return_kind=method.return_kind,
        max_locals=new_locals, code=new_code)
    return shadow
