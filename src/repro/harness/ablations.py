"""Ablation experiments for the design choices DESIGN.md calls out.

These go beyond the paper's figures but each is anchored in a claim the
paper makes in passing:

* **TLB-driven guidance** — "(Using TLB misses as driver for the
  optimization decisions does not improve the results.)" (section 6.3,
  on pseudojbb): drive the co-allocation policy from DTLB misses
  instead of L1 misses and compare.
* **Static oracle** — how much does the online warm-up cost versus a
  perfect a-priori hot-field table? (The gap is the price of *learning*
  the placement online, which the paper's infrastructure exists to make
  cheap.)
* **Hardware prefetcher** — the P4's stream prefetcher is why the
  streaming programs (compress) show so few expensive misses; turning
  it off must hurt them and leave pointer-chasers (db) nearly alone.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.config import GCConfig, SystemConfig
from repro.harness import engine
from repro.harness.runner import RunSpec, measure
from repro.vm.vmcore import RunResult, run_program
from repro.workloads import suite


@dataclass
class EventDriverResult:
    benchmark: str
    #: event name -> (cycles, L1 misses, co-allocated objects).
    by_event: Dict[str, tuple]
    baseline_cycles: int


def event_driver_ablation(benchmark: str = "pseudojbb",
                          heap_mult: float = 4.0,
                          jobs: Optional[int] = None) -> EventDriverResult:
    """Co-allocation guided by L1 vs DTLB misses (section 6.3's aside)."""
    engine.warm([RunSpec(benchmark=benchmark, heap_mult=heap_mult,
                         coalloc=False, monitoring=False)]
                + [RunSpec(benchmark=benchmark, heap_mult=heap_mult,
                           coalloc=True, monitoring=True, event=event)
                   for event in ("L1D_MISS", "DTLB_MISS")], jobs=jobs)
    base = measure(RunSpec(benchmark=benchmark, heap_mult=heap_mult,
                           coalloc=False, monitoring=False))
    by_event = {}
    for event in ("L1D_MISS", "DTLB_MISS"):
        m = measure(RunSpec(benchmark=benchmark, heap_mult=heap_mult,
                            coalloc=True, monitoring=True, event=event))
        r = m.result
        by_event[event] = (r.cycles, r.counters["L1D_MISS"],
                           r.gc_stats.coallocated_objects)
    return EventDriverResult(benchmark, by_event, int(base.cycles_mean))


@dataclass
class OracleResult:
    benchmark: str
    baseline_cycles: int
    online_cycles: int
    oracle_cycles: int
    online_coalloc: int
    oracle_coalloc: int

    @property
    def online_speedup(self) -> float:
        return 1 - self.online_cycles / self.baseline_cycles

    @property
    def oracle_speedup(self) -> float:
        return 1 - self.oracle_cycles / self.baseline_cycles


def static_oracle_ablation(benchmark: str = "db",
                           heap_mult: float = 4.0,
                           jobs: Optional[int] = None) -> OracleResult:
    """Online HPM guidance vs a perfect static hot-field oracle.

    The oracle knows each workload's hot field from construction
    (``Workload.hot_fields``), needs no monitoring, and guides from the
    very first collection — the upper bound on what co-allocation can
    deliver.
    """
    engine.warm([RunSpec(benchmark=benchmark, heap_mult=heap_mult,
                         coalloc=False, monitoring=False),
                 RunSpec(benchmark=benchmark, heap_mult=heap_mult,
                         coalloc=True, monitoring=True)], jobs=jobs)
    base = measure(RunSpec(benchmark=benchmark, heap_mult=heap_mult,
                           coalloc=False, monitoring=False))
    online = measure(RunSpec(benchmark=benchmark, heap_mult=heap_mult,
                             coalloc=True, monitoring=True))

    workload = suite.build(benchmark)
    table = {}
    for qualified in workload.hot_fields:
        class_name, field_name = qualified.split("::")
        klass = workload.program.klass(class_name)
        table[klass] = klass.field(field_name)
    config = SystemConfig(
        gc=GCConfig(heap_bytes=int(workload.min_heap_bytes * heap_mult)),
        coalloc=True, monitoring=False)
    oracle = run_program(workload.program, config,
                         compilation_plan=workload.plan,
                         hot_field_override=lambda k: table.get(k))
    return OracleResult(
        benchmark=benchmark,
        baseline_cycles=int(base.cycles_mean),
        online_cycles=int(online.cycles_mean),
        oracle_cycles=oracle.cycles,
        online_coalloc=online.result.gc_stats.coallocated_objects,
        oracle_coalloc=oracle.gc_stats.coallocated_objects,
    )


@dataclass
class PrefetchResult:
    benchmark: str
    cycles_with: int
    cycles_without: int
    l2_misses_with: int
    l2_misses_without: int

    @property
    def slowdown_without(self) -> float:
        return self.cycles_without / self.cycles_with - 1


def prefetcher_ablation(benchmark: str) -> PrefetchResult:
    """Run with and without the stream prefetcher (depth 0 disables it)."""
    workload_a = suite.build(benchmark)
    on_cfg = SystemConfig(
        gc=GCConfig(heap_bytes=workload_a.min_heap_bytes * 4),
        coalloc=False, monitoring=False)
    with_pf = run_program(workload_a.program, on_cfg,
                          compilation_plan=workload_a.plan)

    workload_b = suite.build(benchmark)
    off_cfg = SystemConfig(
        gc=GCConfig(heap_bytes=workload_b.min_heap_bytes * 4),
        coalloc=False, monitoring=False)
    off_cfg.machine.prefetch_depth = 0
    off_cfg.machine.prefetch_trigger = 10 ** 9
    without_pf = run_program(workload_b.program, off_cfg,
                             compilation_plan=workload_b.plan)
    return PrefetchResult(
        benchmark=benchmark,
        cycles_with=with_pf.cycles,
        cycles_without=without_pf.cycles,
        l2_misses_with=with_pf.counters["L2_MISS"],
        l2_misses_without=without_pf.counters["L2_MISS"],
    )
