"""Plain-text rendering of the experiment results.

Formats each table/figure the way the paper reports it (rows per
benchmark, percentages, normalized times), so a run of the benchmark
harness can be compared against the published numbers side by side
(see EXPERIMENTS.md).
"""

from __future__ import annotations

from typing import List

from repro.harness import experiments as ex


def _rule(width: int = 72) -> str:
    return "-" * width


def format_table1(rows: List[ex.Table1Row]) -> str:
    out = ["Table 1: benchmark programs", _rule()]
    for row in rows:
        out.append(f"{row.name:10s} {row.origin}")
        out.append(f"{'':10s}   {row.description}")
    return "\n".join(out)


def format_table2(rows: List[ex.Table2Row]) -> str:
    out = [
        "Table 2: space overhead — size of machine code maps in KB",
        f"{'program':12s} {'machine code':>12s} {'GC maps only':>12s} "
        f"{'MC maps':>9s}",
        _rule(50),
    ]
    for row in rows:
        out.append(f"{row.name:12s} {row.machine_code_kb:>12d} "
                   f"{row.gc_maps_kb:>12d} {row.mc_maps_kb:>9d}")
    return "\n".join(out)


def format_fig2(rows: List[ex.OverheadRow]) -> str:
    intervals = list(rows[0].overhead) if rows else []
    header = f"{'program':12s}" + "".join(f"{iv:>9s}" for iv in intervals)
    out = ["Figure 2: execution-time overhead of sampling (heap = 4x min)",
           header, _rule(12 + 9 * len(intervals))]
    for row in rows:
        cells = "".join(f"{row.overhead[iv] * 100:>8.2f}%" for iv in intervals)
        out.append(f"{row.name:12s}{cells}")
    if rows:
        avg = {iv: sum(r.overhead[iv] for r in rows) / len(rows)
               for iv in intervals}
        out.append(_rule(12 + 9 * len(intervals)))
        out.append(f"{'average':12s}"
                   + "".join(f"{avg[iv] * 100:>8.2f}%" for iv in intervals))
    return "\n".join(out)


def format_fig3(rows: List[ex.CoallocRow]) -> str:
    intervals = list(rows[0].counts) if rows else []
    header = f"{'program':12s}" + "".join(f"{iv:>10s}" for iv in intervals)
    out = ["Figure 3: number of co-allocated objects (heap = 4x min, "
           "log-scale in the paper)", header, _rule(12 + 10 * len(intervals))]
    for row in rows:
        cells = "".join(f"{row.counts[iv]:>10d}" for iv in intervals)
        out.append(f"{row.name:12s}{cells}")
    return "\n".join(out)


def format_fig4(rows: List[ex.MissReductionRow]) -> str:
    out = ["Figure 4: L1 miss reduction with co-allocation (heap = 4x min)",
           f"{'program':12s} {'baseline':>10s} {'coalloc':>10s} "
           f"{'reduction':>10s}", _rule(46)]
    for row in rows:
        out.append(f"{row.name:12s} {row.baseline_misses:>10d} "
                   f"{row.coalloc_misses:>10d} {row.reduction * 100:>9.1f}%")
    return "\n".join(out)


def format_fig5(rows: List[ex.ExecTimeRow]) -> str:
    mults = list(rows[0].normalized) if rows else []
    header = f"{'program':12s}" + "".join(f"{m:>8.1f}x" for m in mults)
    out = ["Figure 5: execution time relative to the baseline "
           "(auto interval)", header, _rule(12 + 9 * len(mults))]
    for row in rows:
        cells = "".join(f"{row.normalized[m]:>9.3f}" for m in mults)
        out.append(f"{row.name:12s}{cells}")
    return "\n".join(out)


def format_fig6(result: ex.GCPlanComparison) -> str:
    mults = list(result.cycles)
    out = [f"Figure 6: GenCopy vs GenMS with co-allocation ({result.benchmark})",
           f"{'config':16s}" + "".join(f"{m:>8.1f}x" for m in mults),
           _rule(16 + 9 * len(mults))]
    for config in ("genms", "genms+coalloc", "gencopy"):
        cells = "".join(f"{result.normalized(m, config):>9.3f}"
                        for m in mults)
        out.append(f"{config:16s}{cells}")
    return "\n".join(out)


def format_fig7(result: ex.TimelineResult) -> str:
    out = [f"Figure 7: L1 misses for {result.field_name} over time "
           f"({result.benchmark}; {result.coallocated} objects co-allocated)",
           f"{'period':>6s} {'cycles':>12s} {'misses':>8s} {'cumul':>8s} "
           f"{'mov.avg':>8s}", _rule(48)]
    for i, ((cyc, n), (_, cum)) in enumerate(
            zip(result.per_period, result.cumulative)):
        out.append(f"{i:>6d} {cyc:>12d} {n:>8d} {cum:>8d} "
                   f"{result.moving_average[i]:>8.1f}")
    return "\n".join(out)


def format_fig8(result: ex.RevertResult) -> str:
    out = [f"Figure 8: poorly performing placement on {result.benchmark} "
           "(gap = one cache line)",
           f"gap applied at period {result.gap_applied_period}; "
           f"baseline rate {result.baseline_rate:.1f} misses/period",
           f"peak rate {result.peak_rate:.1f}; "
           f"reverted: {result.reverted} "
           f"(period {result.reverted_period}); "
           f"final rate {result.final_rate:.1f}",
           f"{'period':>6s} {'misses':>8s} {'mov.avg':>8s}", _rule(26)]
    for i, (cyc, n) in enumerate(result.per_period):
        marker = ""
        if i == result.gap_applied_period:
            marker = "  <- gap inserted"
        elif result.reverted_period is not None and i == result.reverted_period:
            marker = "  <- reverted"
        out.append(f"{i:>6d} {n:>8d} {result.moving_average[i]:>8.1f}{marker}")
    return "\n".join(out)
