"""Benchmark runner: one entry point per (benchmark, configuration).

The experiment figures share many configurations (Figure 4's large-heap
runs are Figure 5's 4x points, ...), so results are cached in layers:

1. an in-process memo of :class:`Measurement` aggregates and per-seed
   :class:`~repro.harness.record.RunRecord` results,
2. a persistent on-disk cache (:mod:`repro.harness.diskcache`) keyed by
   the spec plus a code-version hash, so re-running any figure across
   processes or CI runs is near-instant,
3. the simulator itself (:func:`execute`), which always runs fresh —
   guest programs carry mutable static state, so each run builds a new
   program.

``measure`` traffics in portable :class:`RunRecord` results (no live VM
reference), which is what lets the parallel scheduler in
:mod:`repro.harness.engine` compute them in worker processes and the
disk cache replay them without any simulation work.

The paper reports timing as averages over 3 executions; the simulator
is deterministic for a fixed seed, so repetition happens over seeds and
the reported deviation is across-seed.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from repro.core.config import GCConfig, SystemConfig, scaled_interval
from repro.harness import diskcache
from repro.harness.record import RunRecord
from repro.vm.vmcore import RunResult, VM, run_program
from repro.workloads import suite

#: Interval names accepted by the harness: the paper's three plus auto.
INTERVAL_NAMES = ("25K", "50K", "100K", "auto")

#: Simulations actually executed by this process (not served from any
#: cache layer) — the counter the warm-cache "zero simulation work"
#: assertions read.
SIM_RUNS = 0


@dataclass(frozen=True)
class RunSpec:
    """One benchmark execution configuration."""

    benchmark: str
    heap_mult: float = 4.0
    coalloc: bool = False
    monitoring: bool = True
    interval: str = "auto"          # "25K" | "50K" | "100K" | "auto"
    gc_plan: str = "genms"
    event: str = "L1D_MISS"
    seed: int = 1

    def system_config(self, min_heap_bytes: int) -> SystemConfig:
        sampling = (None if self.interval == "auto"
                    else scaled_interval(self.interval))
        return SystemConfig(
            gc=GCConfig(heap_bytes=int(min_heap_bytes * self.heap_mult)),
            coalloc=self.coalloc,
            monitoring=self.monitoring,
            sampling_interval=sampling,
            sampled_event=self.event,
            gc_plan=self.gc_plan,
            seed=self.seed,
        )


@dataclass
class Measurement:
    """Aggregate over the repetition seeds of one spec."""

    spec: RunSpec
    cycles_mean: float
    cycles_std: float
    results: List[RunRecord] = field(repr=False, default_factory=list)

    @property
    def result(self) -> RunRecord:
        """The first repetition (used for counters and GC statistics —
        identical across seeds except for sampling jitter)."""
        return self.results[0]

    @property
    def l1_misses(self) -> int:
        return self.result.counters["L1D_MISS"]

    @property
    def coallocated(self) -> int:
        return self.result.gc_stats.coallocated_objects


_CACHE: Dict[RunSpec, Measurement] = {}
_RECORDS: Dict[RunSpec, RunRecord] = {}
_DISK: Optional[diskcache.DiskCache] = None
_DISK_RESOLVED = False


def _disk() -> Optional[diskcache.DiskCache]:
    """The process-wide disk cache (None when disabled via env)."""
    global _DISK, _DISK_RESOLVED
    if not _DISK_RESOLVED:
        _DISK = diskcache.DiskCache() if diskcache.cache_enabled() else None
        _DISK_RESOLVED = True
    return _DISK


def set_disk_cache(cache: Optional[diskcache.DiskCache]) -> None:
    """Inject (or disable, with None) the persistent cache layer."""
    global _DISK, _DISK_RESOLVED
    _DISK = cache
    _DISK_RESOLVED = True


def execute(spec: RunSpec, telemetry=None, fastpath=None,
            lineage=None) -> RunResult:
    """Run one spec once (no caching).

    ``telemetry``, ``lineage``, and ``fastpath`` ride on the
    :class:`SystemConfig`, never on the frozen spec, so they cannot
    pollute the memoization key used by :func:`measure` (nor the
    disk-cache key): telemetry and the lineage ledger are pure
    observers, and the two interpreters are bit-identical, so a record
    computed under any knob setting is valid for all of them.
    """
    global SIM_RUNS
    if spec.interval not in INTERVAL_NAMES:
        raise ValueError(f"unknown interval {spec.interval!r}")
    SIM_RUNS += 1
    workload = suite.build(spec.benchmark)
    config = spec.system_config(workload.min_heap_bytes)
    if telemetry is not None:
        config.telemetry = telemetry
    if lineage is not None:
        config.lineage = lineage
    if fastpath is not None:
        config.fastpath = fastpath
    return run_program(workload.program, config, compilation_plan=workload.plan)


def cached_record(spec: RunSpec) -> Optional[RunRecord]:
    """Look ``spec`` up in the memo and disk layers without computing."""
    record = _RECORDS.get(spec)
    if record is None:
        disk = _disk()
        if disk is not None:
            record = disk.get(spec)
            if record is not None:
                _RECORDS[spec] = record
    return record


def store_record(spec: RunSpec, record: RunRecord) -> None:
    """Install a computed record in the memo and disk layers."""
    _RECORDS[spec] = record
    disk = _disk()
    if disk is not None:
        disk.put(spec, record)


def record_from_result(spec: RunSpec, result: RunResult,
                       fastpath: "bool | None" = None) -> RunRecord:
    """Extract a portable record and stamp its provenance manifest.

    This is the one place records destined for the cache layers are
    minted (both the serial path here and the worker path in
    :mod:`repro.harness.engine` go through it), so every stored record
    carries the inputs it is a pure function of.
    """
    from repro.analysis import provenance

    record = RunRecord.from_result(result)
    record.provenance = provenance.manifest(spec, fastpath)
    return record


def record_for(spec: RunSpec) -> RunRecord:
    """One spec's portable result: memo -> disk -> simulate."""
    record = cached_record(spec)
    if record is None:
        record = record_from_result(spec, execute(spec))
        store_record(spec, record)
    return record


def measure(spec: RunSpec, repeats: int = 1) -> Measurement:
    """Run (cached) with ``repeats`` seeds; aggregate cycle counts.

    Each repetition seed is cached independently, so raising ``repeats``
    only computes the seeds not already measured.
    """
    cached = _CACHE.get(spec)
    if cached is not None and len(cached.results) >= repeats:
        return cached
    records = [record_for(spec if r == 0 else
                          replace(spec, seed=spec.seed + r))
               for r in range(repeats)]
    cycles = [r.cycles for r in records]
    measurement = Measurement(
        spec=spec,
        cycles_mean=statistics.fmean(cycles),
        cycles_std=statistics.pstdev(cycles) if len(cycles) > 1 else 0.0,
        results=records,
    )
    _CACHE[spec] = measurement
    return measurement


def clear_cache(disk: bool = False) -> None:
    """Drop the in-process memo; with ``disk=True`` also the disk layer."""
    _CACHE.clear()
    _RECORDS.clear()
    if disk:
        layer = _disk()
        if layer is not None:
            layer.clear()


def make_vm(benchmark: str, spec: Optional[RunSpec] = None,
            telemetry=None, fastpath=None,
            lineage=None) -> Tuple[VM, object]:
    """Build a VM without running it (for experiments that intervene
    mid-run, like Figure 8's manual gap insertion).

    Returns ``(vm, workload)``.
    """
    spec = spec or RunSpec(benchmark=benchmark, coalloc=True)
    workload = suite.build(benchmark)
    config = spec.system_config(workload.min_heap_bytes)
    if telemetry is not None:
        config.telemetry = telemetry
    if lineage is not None:
        config.lineage = lineage
    if fastpath is not None:
        config.fastpath = fastpath
    vm = VM(workload.program, config, compilation_plan=workload.plan)
    return vm, workload
