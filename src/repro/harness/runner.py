"""Benchmark runner: one entry point per (benchmark, configuration).

The experiment figures share many configurations (Figure 4's large-heap
runs are Figure 5's 4x points, ...), so results are memoized per
process on the full configuration key.  Each run builds a *fresh*
program (guest programs carry mutable static state).

The paper reports timing as averages over 3 executions; the simulator
is deterministic for a fixed seed, so repetition happens over seeds and
the reported deviation is across-seed.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.config import GCConfig, SystemConfig, scaled_interval
from repro.vm.vmcore import RunResult, VM, run_program
from repro.workloads import suite

#: Interval names accepted by the harness: the paper's three plus auto.
INTERVAL_NAMES = ("25K", "50K", "100K", "auto")


@dataclass(frozen=True)
class RunSpec:
    """One benchmark execution configuration."""

    benchmark: str
    heap_mult: float = 4.0
    coalloc: bool = False
    monitoring: bool = True
    interval: str = "auto"          # "25K" | "50K" | "100K" | "auto"
    gc_plan: str = "genms"
    event: str = "L1D_MISS"
    seed: int = 1

    def system_config(self, min_heap_bytes: int) -> SystemConfig:
        sampling = (None if self.interval == "auto"
                    else scaled_interval(self.interval))
        return SystemConfig(
            gc=GCConfig(heap_bytes=int(min_heap_bytes * self.heap_mult)),
            coalloc=self.coalloc,
            monitoring=self.monitoring,
            sampling_interval=sampling,
            sampled_event=self.event,
            gc_plan=self.gc_plan,
            seed=self.seed,
        )


@dataclass
class Measurement:
    """Aggregate over the repetition seeds of one spec."""

    spec: RunSpec
    cycles_mean: float
    cycles_std: float
    results: List[RunResult] = field(repr=False, default_factory=list)

    @property
    def result(self) -> RunResult:
        """The first repetition (used for counters and GC statistics —
        identical across seeds except for sampling jitter)."""
        return self.results[0]

    @property
    def l1_misses(self) -> int:
        return self.result.counters["L1D_MISS"]

    @property
    def coallocated(self) -> int:
        return self.result.gc_stats.coallocated_objects


_CACHE: Dict[RunSpec, Measurement] = {}


def execute(spec: RunSpec, telemetry=None) -> RunResult:
    """Run one spec once (no caching).

    ``telemetry`` rides on the :class:`SystemConfig`, never on the
    frozen spec, so it cannot pollute the memoization key used by
    :func:`measure`.
    """
    if spec.interval not in INTERVAL_NAMES:
        raise ValueError(f"unknown interval {spec.interval!r}")
    workload = suite.build(spec.benchmark)
    config = spec.system_config(workload.min_heap_bytes)
    if telemetry is not None:
        config.telemetry = telemetry
    return run_program(workload.program, config, compilation_plan=workload.plan)


def measure(spec: RunSpec, repeats: int = 1) -> Measurement:
    """Run (memoized) with ``repeats`` seeds; aggregate cycle counts."""
    cached = _CACHE.get(spec)
    if cached is not None and len(cached.results) >= repeats:
        return cached
    results = [execute(spec if r == 0 else
                       RunSpec(**{**spec.__dict__, "seed": spec.seed + r}))
               for r in range(repeats)]
    cycles = [r.cycles for r in results]
    measurement = Measurement(
        spec=spec,
        cycles_mean=statistics.fmean(cycles),
        cycles_std=statistics.pstdev(cycles) if len(cycles) > 1 else 0.0,
        results=results,
    )
    _CACHE[spec] = measurement
    return measurement


def clear_cache() -> None:
    _CACHE.clear()


def make_vm(benchmark: str, spec: Optional[RunSpec] = None,
            telemetry=None) -> Tuple[VM, object]:
    """Build a VM without running it (for experiments that intervene
    mid-run, like Figure 8's manual gap insertion).

    Returns ``(vm, workload)``.
    """
    spec = spec or RunSpec(benchmark=benchmark, coalloc=True)
    workload = suite.build(benchmark)
    config = spec.system_config(workload.min_heap_bytes)
    if telemetry is not None:
        config.telemetry = telemetry
    vm = VM(workload.program, config, compilation_plan=workload.plan)
    return vm, workload
