"""Benchmark runner: one entry point per (benchmark, configuration).

The experiment figures share many configurations (Figure 4's large-heap
runs are Figure 5's 4x points, ...), so results are cached in layers:

1. an in-process memo of :class:`Measurement` aggregates and per-seed
   :class:`~repro.harness.record.RunRecord` results,
2. a persistent on-disk cache (:mod:`repro.harness.diskcache`) keyed by
   the spec plus a code-version hash, so re-running any figure across
   processes or CI runs is near-instant,
3. the simulator itself (:func:`execute`), which always runs fresh —
   guest programs carry mutable static state, so each run builds a new
   program.

``measure`` traffics in portable :class:`RunRecord` results (no live VM
reference), which is what lets the parallel scheduler in
:mod:`repro.harness.engine` compute them in worker processes and the
disk cache replay them without any simulation work.

The paper reports timing as averages over 3 executions; the simulator
is deterministic for a fixed seed, so repetition happens over seeds and
the reported deviation is across-seed.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from repro.core.config import GCConfig, SystemConfig, scaled_interval
from repro.harness import diskcache
from repro.harness.record import RunRecord
from repro.vm import snapshot as snapshot_mod
from repro.vm.snapshot import Snapshot
from repro.vm.vmcore import RunResult, VM
from repro.workloads import suite

#: Interval names accepted by the harness: the paper's three plus auto.
INTERVAL_NAMES = ("25K", "50K", "100K", "auto")

#: Simulations actually executed by this process (not served from any
#: cache layer) — the counter the warm-cache "zero simulation work"
#: assertions read.
SIM_RUNS = 0

#: Cycles actually *simulated* by this process.  A resumed run adds
#: only its delta, which is how tests prove that extending a cached
#: ``until_cycles`` run never re-executes the prefix.
SIM_CYCLES = 0

#: Checkpoint grid ``measure(repeats)`` uses when it has to simulate
#: the first seed itself: coarse enough to stay cheap, fine enough
#: that seed-invariant specs (see :func:`repro.vm.snapshot.reseed`)
#: reuse most of the prefix for every further seed.
MEASURE_CHECKPOINT_EVERY = 1_000_000


@dataclass(frozen=True)
class RunSpec:
    """One benchmark execution configuration."""

    benchmark: str
    heap_mult: float = 4.0
    coalloc: bool = False
    monitoring: bool = True
    interval: str = "auto"          # "25K" | "50K" | "100K" | "auto"
    gc_plan: str = "genms"
    event: str = "L1D_MISS"
    seed: int = 1
    #: Stop (and record) once the cycle clock passes this bound; None
    #: runs to completion.  Two specs differing only here share one
    #: checkpoint family in the caches (see :func:`base_spec`).
    until_cycles: Optional[int] = None

    def base(self) -> "RunSpec":
        """The spec with the cycle bound stripped — the snapshot key."""
        return replace(self, until_cycles=None) if self.until_cycles \
            else self

    def system_config(self, min_heap_bytes: int) -> SystemConfig:
        sampling = (None if self.interval == "auto"
                    else scaled_interval(self.interval))
        return SystemConfig(
            gc=GCConfig(heap_bytes=int(min_heap_bytes * self.heap_mult)),
            coalloc=self.coalloc,
            monitoring=self.monitoring,
            sampling_interval=sampling,
            sampled_event=self.event,
            gc_plan=self.gc_plan,
            seed=self.seed,
        )


@dataclass
class Measurement:
    """Aggregate over the repetition seeds of one spec."""

    spec: RunSpec
    cycles_mean: float
    cycles_std: float
    results: List[RunRecord] = field(repr=False, default_factory=list)

    @property
    def result(self) -> RunRecord:
        """The first repetition (used for counters and GC statistics —
        identical across seeds except for sampling jitter)."""
        return self.results[0]

    @property
    def l1_misses(self) -> int:
        return self.result.counters["L1D_MISS"]

    @property
    def coallocated(self) -> int:
        return self.result.gc_stats.coallocated_objects


_CACHE: Dict[RunSpec, Measurement] = {}
_RECORDS: Dict[RunSpec, RunRecord] = {}
#: In-process checkpoint memo: base spec -> {cycle: Snapshot}.
_SNAPSHOTS: Dict[RunSpec, Dict[int, Snapshot]] = {}
_DISK: Optional[diskcache.DiskCache] = None
_DISK_RESOLVED = False


def _disk() -> Optional[diskcache.DiskCache]:
    """The process-wide disk cache (None when disabled via env)."""
    global _DISK, _DISK_RESOLVED
    if not _DISK_RESOLVED:
        _DISK = diskcache.DiskCache() if diskcache.cache_enabled() else None
        _DISK_RESOLVED = True
    return _DISK


def set_disk_cache(cache: Optional[diskcache.DiskCache]) -> None:
    """Inject (or disable, with None) the persistent cache layer."""
    global _DISK, _DISK_RESOLVED
    _DISK = cache
    _DISK_RESOLVED = True


def execute(spec: RunSpec, telemetry=None, fastpath=None,
            lineage=None, health=None,
            resume_from: Optional[Snapshot] = None,
            checkpoint_every: Optional[int] = None,
            on_checkpoint=None) -> RunResult:
    """Run one spec once (no caching).

    ``telemetry``, ``lineage``, ``health``, and ``fastpath`` ride on
    the :class:`SystemConfig`, never on the frozen spec, so they cannot
    pollute the memoization key used by :func:`measure` (nor the
    disk-cache key): telemetry, the lineage ledger, and the health
    monitor are pure observers, and the interpreters are bit-identical,
    so a record computed under any knob setting is valid for all of
    them.

    ``resume_from`` continues a captured :class:`Snapshot` instead of
    simulating from cycle 0 — bit-identical to the unbroken run.  A
    resumed run keeps the snapshot's own telemetry/lineage observers
    (they hold the already-recorded prefix); only ``fastpath`` may be
    overridden.  ``checkpoint_every`` slices the run on an absolute
    cycle grid and hands each boundary snapshot to ``on_checkpoint``;
    the grid is absolute (multiples of the stride, not offsets from
    the start) so resumed legs land on the same checkpoints the
    unbroken run would.
    """
    if spec.interval not in INTERVAL_NAMES:
        raise ValueError(f"unknown interval {spec.interval!r}")
    if resume_from is not None:
        vm = resume_from.restore(fastpath=fastpath)
    else:
        workload = suite.build(spec.benchmark)
        config = spec.system_config(workload.min_heap_bytes)
        if telemetry is not None:
            config.telemetry = telemetry
        if lineage is not None:
            config.lineage = lineage
        if health is not None:
            config.health = health
        if fastpath is not None:
            config.fastpath = fastpath
        vm = VM(workload.program, config, compilation_plan=workload.plan)
        vm.begin()
    return _drive(vm, until_cycles=spec.until_cycles,
                  checkpoint_every=checkpoint_every,
                  on_checkpoint=on_checkpoint)


def _drive(vm: VM, until_cycles: Optional[int] = None,
           checkpoint_every: Optional[int] = None,
           on_checkpoint=None) -> RunResult:
    """Advance a begun (or restored) VM to its end state and finish it.

    The end state is completion, or the first scheduler-quantum
    boundary past ``until_cycles``.  When the run is truncated by the
    bound, a final snapshot is captured *before* ``finish()`` (whose
    sample drain mutates controller state), so the same simulation
    yields both the truncated record and the checkpoint a later
    extension resumes from.
    """
    global SIM_RUNS, SIM_CYCLES
    SIM_RUNS += 1
    start_cycles = vm.cpu.cycles
    done = False
    while not done:
        stop = until_cycles
        if checkpoint_every:
            grid = (vm.cpu.cycles // checkpoint_every + 1) * checkpoint_every
            stop = grid if until_cycles is None else min(grid, until_cycles)
        done = vm.advance(until_cycles=stop)
        if done:
            break
        if until_cycles is not None and vm.cpu.cycles >= until_cycles:
            break
        if on_checkpoint is not None:
            on_checkpoint(Snapshot.capture(vm))
    if not done and on_checkpoint is not None:
        on_checkpoint(Snapshot.capture(vm))
    SIM_CYCLES += vm.cpu.cycles - start_cycles
    return vm.finish()


def cached_record(spec: RunSpec) -> Optional[RunRecord]:
    """Look ``spec`` up in the memo and disk layers without computing."""
    record = _RECORDS.get(spec)
    if record is None:
        disk = _disk()
        if disk is not None:
            record = disk.get(spec)
            if record is not None:
                _RECORDS[spec] = record
    return record


def store_record(spec: RunSpec, record: RunRecord) -> None:
    """Install a computed record in the memo and disk layers."""
    _RECORDS[spec] = record
    disk = _disk()
    if disk is not None:
        disk.put(spec, record)


def record_from_result(spec: RunSpec, result: RunResult,
                       fastpath: "bool | None" = None) -> RunRecord:
    """Extract a portable record and stamp its provenance manifest.

    This is the one place records destined for the cache layers are
    minted (both the serial path here and the worker path in
    :mod:`repro.harness.engine` go through it), so every stored record
    carries the inputs it is a pure function of.
    """
    from repro.analysis import provenance

    record = RunRecord.from_result(result)
    record.provenance = provenance.manifest(spec, fastpath)
    return record


def store_snapshot(spec: RunSpec, snap: Snapshot) -> None:
    """Install one checkpoint in the memo and disk layers.

    Keyed by the *base* spec (``until_cycles`` stripped): every cycle
    bound of the same configuration draws from one checkpoint family.
    """
    base = spec.base()
    _SNAPSHOTS.setdefault(base, {})[snap.cycle] = snap
    disk = _disk()
    if disk is not None:
        disk.put_snapshot(base, snap)


def best_snapshot(spec: RunSpec) -> Optional[Snapshot]:
    """The latest cached checkpoint usable for ``spec``, or None.

    Usable means *pure* (no live observers — a cached record must come
    out identical whether simulated fresh or resumed) and strictly
    before the spec's ``until_cycles`` bound (resuming at or past the
    bound would skip the recorded end state).
    """
    base = spec.base()
    bound = spec.until_cycles
    memo = _SNAPSHOTS.get(base, {})
    cycles = [c for c in memo
              if memo[c].pure and (bound is None or c < bound)]
    best = memo[max(cycles)] if cycles else None
    disk = _disk()
    if disk is not None:
        from_disk = disk.get_snapshot(base, max_cycle=bound,
                                      require_pure=True)
        if from_disk is not None and (best is None
                                      or from_disk.cycle > best.cycle):
            _SNAPSHOTS.setdefault(base, {})[from_disk.cycle] = from_disk
            best = from_disk
    return best


def record_for(spec: RunSpec,
               checkpoint_every: Optional[int] = None) -> RunRecord:
    """One spec's portable result: memo -> disk -> simulate.

    Simulation resumes from the best cached checkpoint when one
    exists, and a run truncated by ``until_cycles`` deposits its end
    state back into the snapshot layers — so extending a bounded run's
    horizon simulates only the delta (``SIM_CYCLES`` proves it).
    """
    record = cached_record(spec)
    if record is not None:
        return record
    on_checkpoint = None
    if spec.until_cycles is not None or checkpoint_every:
        def on_checkpoint(snap, _spec=spec):
            store_snapshot(_spec, snap)
    result = execute(spec, resume_from=best_snapshot(spec),
                     checkpoint_every=checkpoint_every,
                     on_checkpoint=on_checkpoint)
    record = record_from_result(spec, result)
    store_record(spec, record)
    return record


def _record_via_reseed(spec: RunSpec,
                       donor: RunSpec) -> Optional[RunRecord]:
    """Derive ``spec``'s record from a *different-seeded* checkpoint.

    ``donor`` is the same configuration under another seed.  A donor
    checkpoint taken while the run was still seed-invariant — before
    any PEBS sample fired, at most the configure-time jitter draw deep
    (see :func:`repro.vm.snapshot.reseed`) — restores into a bit-exact
    prefix of ``spec``'s own unbroken run, so only the tail needs
    simulating.  Tries the newest qualifying checkpoint first; returns
    None when no prefix can be retargeted (callers fall back to a
    full run).
    """
    base = donor.base()
    candidates = dict(_SNAPSHOTS.get(base, {}))
    disk = _disk()
    if disk is not None:
        for cycle in disk.snapshot_cycles(base):
            if cycle not in candidates:
                snap = disk.get_snapshot(base, max_cycle=cycle + 1)
                if snap is not None:
                    candidates[snap.cycle] = snap
    bound = spec.until_cycles
    for cycle in sorted(candidates, reverse=True):
        if bound is not None and cycle >= bound:
            continue
        if not candidates[cycle].pure:
            continue
        vm = candidates[cycle].restore()
        if not snapshot_mod.reseed(vm, spec.seed):
            continue
        record = record_from_result(spec, _drive(vm, until_cycles=bound))
        store_record(spec, record)
        return record
    return None


def measure(spec: RunSpec, repeats: int = 1) -> Measurement:
    """Run (cached) with ``repeats`` seeds; aggregate cycle counts.

    Each repetition seed is cached independently, so raising ``repeats``
    only computes the seeds not already measured.  When the first seed
    must actually be simulated for a multi-seed measurement, the run is
    checkpointed on the :data:`MEASURE_CHECKPOINT_EVERY` grid and later
    seeds try to *reseed* the deepest still-seed-invariant checkpoint
    instead of re-simulating the shared prefix (full-run fallback when
    the invariant fails — see :func:`_record_via_reseed`).
    """
    cached = _CACHE.get(spec)
    if cached is not None and len(cached.results) >= repeats:
        return cached
    records = []
    for r in range(repeats):
        if r == 0:
            every = MEASURE_CHECKPOINT_EVERY if repeats > 1 else None
            records.append(record_for(spec, checkpoint_every=every))
            continue
        seeded = replace(spec, seed=spec.seed + r)
        record = cached_record(seeded)
        if record is None:
            record = _record_via_reseed(seeded, spec)
        if record is None:
            record = record_for(seeded)
        records.append(record)
    cycles = [r.cycles for r in records]
    measurement = Measurement(
        spec=spec,
        cycles_mean=statistics.fmean(cycles),
        cycles_std=statistics.pstdev(cycles) if len(cycles) > 1 else 0.0,
        results=records,
    )
    _CACHE[spec] = measurement
    return measurement


def clear_cache(disk: bool = False) -> None:
    """Drop the in-process memo; with ``disk=True`` also the disk layer."""
    _CACHE.clear()
    _RECORDS.clear()
    _SNAPSHOTS.clear()
    if disk:
        layer = _disk()
        if layer is not None:
            layer.clear()


def make_vm(benchmark: str, spec: Optional[RunSpec] = None,
            telemetry=None, fastpath=None,
            lineage=None, health=None) -> Tuple[VM, object]:
    """Build a VM without running it (for experiments that intervene
    mid-run, like Figure 8's manual gap insertion).

    Returns ``(vm, workload)``.
    """
    spec = spec or RunSpec(benchmark=benchmark, coalloc=True)
    workload = suite.build(benchmark)
    config = spec.system_config(workload.min_heap_bytes)
    if telemetry is not None:
        config.telemetry = telemetry
    if lineage is not None:
        config.lineage = lineage
    if health is not None:
        config.health = health
    if fastpath is not None:
        config.fastpath = fastpath
    vm = VM(workload.program, config, compilation_plan=workload.plan)
    return vm, workload
