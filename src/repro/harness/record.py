"""Portable run results.

A :class:`RunRecord` is everything the experiment harness needs from one
simulated execution, detached from the live :class:`~repro.vm.vmcore.VM`
so it can cross process boundaries (the parallel scheduler) and survive
on disk (the persistent result cache).  The deep-inspection surfaces the
figures read off the VM — the per-field miss time series of Figures 7/8,
the compiler map sizes of Table 2, the feedback engine's revert log —
are extracted eagerly at run end into plain data.

The record round-trips losslessly through JSON (:meth:`to_json` /
:meth:`from_json`), which is what makes "parallel == serial" and "cached
== recomputed" exact equalities rather than approximations: a record
computed in a worker process, stored to disk, and reloaded compares
equal field-for-field to one computed inline.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.monitor import moving_average
from repro.gc.stats import GCStats

#: Bump when the record layout changes; part of the disk-cache key.
#: Version 2 added ``provenance``; version 3 added the optional
#: ``lineage`` document (the serialized decision ledger); version 4
#: added ``exit_value`` (the guest main's return value — None for runs
#: truncated by ``until_cycles``), which the snapshot bit-identity
#: gates compare; version 5 added the optional ``health`` document (the
#: serialized :class:`repro.health.HealthReport`).  Older records load
#: fine — they simply carry the field defaults — so caches survive the
#: bumps.
SCHEMA_VERSION = 5

#: Schemas :meth:`RunRecord.from_json` accepts.  Every historical
#: version is listed: each bump since 1 only *added* fields with safe
#: defaults, so legacy documents construct correctly via ``doc.get``.
COMPATIBLE_SCHEMAS = (1, 2, 3, 4, 5)


@dataclass
class RunRecord:
    """One execution's results in plain, JSON-serializable data."""

    program: str
    cycles: int
    instructions: int
    app_cycles: int
    gc_cycles: int
    monitoring_cycles: int
    counters: Dict[str, int]
    gc_stats: GCStats
    monitor_summary: Optional[dict]
    #: qualified field name -> [(period end cycle, events), ...]
    field_series: Dict[str, List[Tuple[int, int]]] = field(default_factory=dict)
    #: (machine code, GC maps, MC maps) bytes of the compiled corpus.
    map_sizes: Tuple[int, int, int] = (0, 0, 0)
    #: Names of feedback experiments that were reverted during the run.
    reverted_experiments: List[str] = field(default_factory=list)
    moving_average_window: int = 3
    #: Provenance manifest (:mod:`repro.analysis.provenance`): the
    #: inputs this record is a pure function of — code version, spec +
    #: spec key, seed, fastpath knob, schema.  Stamped by the harness
    #: (:func:`repro.harness.runner.record_from_result`); None for
    #: records built directly from a RunResult.
    provenance: Optional[dict] = None
    #: The guest main method's return value (a guest int, or None for
    #: a run truncated by an ``until_cycles`` bound or a legacy
    #: record).  Must stay JSON-representable.
    exit_value: object = None
    #: Serialized decision ledger (:meth:`DecisionLedger.to_json`):
    #: ``{"schema", "entries", "dropped"}``.  None when the run carried
    #: no ledger (the default) and for legacy schema-2 records.
    lineage: Optional[dict] = None
    #: Serialized health report (:meth:`repro.health.HealthReport.to_json`):
    #: ``{"schema", "verdict", "phases", "findings", ...}``.  None when
    #: the run carried no health monitor and for pre-schema-5 records.
    health: Optional[dict] = None

    # -- RunResult-compatible read surface -----------------------------------

    @property
    def l1_misses(self) -> int:
        return self.counters["L1D_MISS"]

    @property
    def l1_miss_rate(self) -> float:
        accesses = self.counters["L1D_ACCESS"]
        return self.counters["L1D_MISS"] / accesses if accesses else 0.0

    @property
    def coallocated(self) -> int:
        return self.gc_stats.coallocated_objects

    # -- time series (Figures 7 and 8) ---------------------------------------

    def series(self, field_name: str) -> List[Tuple[int, int]]:
        """Per-period events for a field, by qualified name."""
        return self.field_series.get(field_name, [])

    def cumulative_series(self, field_name: str) -> List[Tuple[int, int]]:
        out = []
        total = 0
        for end_cycle, events in self.series(field_name):
            total += events
            out.append((end_cycle, total))
        return out

    def moving_average(self, values: List[int],
                       window: Optional[int] = None) -> List[float]:
        return moving_average(values, window or self.moving_average_window)

    # -- construction --------------------------------------------------------

    @classmethod
    def from_result(cls, result) -> "RunRecord":
        """Extract a portable record from a live RunResult."""
        vm = result.vm
        field_series: Dict[str, List[Tuple[int, int]]] = {}
        reverted: List[str] = []
        window = 3
        map_sizes = (0, 0, 0)
        lineage = None
        health = None
        if vm is not None and vm.lineage.enabled:
            lineage = vm.lineage.to_json()
        if vm is not None and vm.health.enabled:
            health = vm.health.report(result.cycles).to_json()
        if vm is not None:
            from repro.jit.maps import corpus_map_sizes

            sizes = corpus_map_sizes(vm.codecache.methods)
            map_sizes = (sizes.machine_code, sizes.gc_maps, sizes.mc_maps)
            if vm.controller is not None:
                monitor = vm.controller.monitor
                window = monitor.config.moving_average_window
                fields = set(monitor.cumulative)
                for period in monitor.periods:
                    fields.update(period.field_counts)
                # Sorted so a record's serialized form is deterministic
                # regardless of hash randomization across processes.
                for fld in sorted(fields, key=lambda f: f.qualified_name):
                    field_series[fld.qualified_name] = monitor.series(fld)
                reverted = [e.name for e in
                            vm.controller.feedback.reverted_experiments()]
        return cls(
            program=result.program,
            cycles=result.cycles,
            instructions=result.instructions,
            app_cycles=result.app_cycles,
            gc_cycles=result.gc_cycles,
            monitoring_cycles=result.monitoring_cycles,
            counters=dict(result.counters),
            gc_stats=GCStats(**asdict(result.gc_stats)),
            monitor_summary=(dict(result.monitor_summary)
                             if result.monitor_summary else None),
            field_series=field_series,
            map_sizes=map_sizes,
            reverted_experiments=reverted,
            moving_average_window=window,
            exit_value=result.exit_value,
            lineage=lineage,
            health=health,
        )

    # -- JSON round trip -----------------------------------------------------

    def to_json(self) -> dict:
        return {
            "schema": SCHEMA_VERSION,
            "program": self.program,
            "cycles": self.cycles,
            "instructions": self.instructions,
            "app_cycles": self.app_cycles,
            "gc_cycles": self.gc_cycles,
            "monitoring_cycles": self.monitoring_cycles,
            "counters": dict(self.counters),
            "gc_stats": asdict(self.gc_stats),
            "monitor_summary": self.monitor_summary,
            "field_series": {name: [list(point) for point in series]
                             for name, series in self.field_series.items()},
            "map_sizes": list(self.map_sizes),
            "reverted_experiments": list(self.reverted_experiments),
            "moving_average_window": self.moving_average_window,
            "exit_value": self.exit_value,
            "provenance": self.provenance,
            "lineage": self.lineage,
            "health": self.health,
        }

    @classmethod
    def from_json(cls, doc: dict) -> "RunRecord":
        if not isinstance(doc, dict):
            raise ValueError(f"record document must be an object, "
                             f"got {type(doc).__name__}")
        if doc.get("schema") not in COMPATIBLE_SCHEMAS:
            raise ValueError(f"unsupported record schema {doc.get('schema')!r}")
        return cls(
            program=doc["program"],
            cycles=doc["cycles"],
            instructions=doc["instructions"],
            app_cycles=doc["app_cycles"],
            gc_cycles=doc["gc_cycles"],
            monitoring_cycles=doc["monitoring_cycles"],
            counters=dict(doc["counters"]),
            gc_stats=GCStats(**doc["gc_stats"]),
            monitor_summary=doc["monitor_summary"],
            field_series={name: [tuple(point) for point in series]
                          for name, series in doc["field_series"].items()},
            map_sizes=tuple(doc["map_sizes"]),
            reverted_experiments=list(doc["reverted_experiments"]),
            moving_average_window=doc["moving_average_window"],
            exit_value=doc.get("exit_value"),
            provenance=doc.get("provenance"),
            lineage=doc.get("lineage"),
            health=doc.get("health"),
        )
