"""One entry point per table and figure of the paper's evaluation.

Each function returns a plain-data result object that the report module
formats like the paper's rows/series; the benchmark suite under
``benchmarks/`` asserts the *shapes* (who wins, roughly by how much,
where the crossovers fall) on these results.

Conventions (section 6):

* the **baseline** is the plain VM — no event sampling, no co-allocation
  (the "original VM configuration", FastAdaptiveGenMS),
* overhead/benefit runs have monitoring enabled; the co-allocation runs
  pay the full monitoring cost, exactly as in the paper,
* "heap size = 4x minimum heap size" is the default evaluation point;
  Figure 5/6 sweep 1x..4x,
* the auto interval adapts toward a fixed sample rate (section 6.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from repro.harness import engine
from repro.harness.runner import RunSpec, make_vm, measure
from repro.jit.baseline import compile_baseline
from repro.jit.maps import MapSizes, method_map_sizes
from repro.vm.program import Program
from repro.workloads import suite
from repro.workloads.patterns import add_filler_methods, make_app_class

#: The heap sizes of Figures 5 and 6, as multiples of the minimum heap.
HEAP_MULTS = (1.0, 1.5, 2.0, 3.0, 4.0)
#: The sampling intervals of Figures 2 and 3 (paper names; scaled by
#: INTERVAL_SCALE internally).
INTERVALS = ("25K", "50K", "100K")


# ---------------------------------------------------------------------------
# Spec enumeration + parallel warm-up
# ---------------------------------------------------------------------------

def _expand_repeats(specs: List[RunSpec], repeats: int) -> List[RunSpec]:
    """Mirror ``measure(spec, repeats)``'s per-seed expansion."""
    if repeats <= 1:
        return specs
    return [spec if r == 0 else replace(spec, seed=spec.seed + r)
            for spec in specs for r in range(repeats)]


def _warm(specs: List[RunSpec], jobs: Optional[int],
          repeats: int = 1) -> None:
    """Precompute a figure's runs across cores before its serial loop.

    With everything cached this costs a few dictionary lookups, so the
    figure drivers call it unconditionally.
    """
    engine.warm(_expand_repeats(specs, repeats), jobs=jobs)


def figure_specs(benchmarks: Optional[List[str]] = None,
                 heap_mults: Tuple[float, ...] = HEAP_MULTS,
                 intervals: Tuple[str, ...] = INTERVALS) -> List[RunSpec]:
    """Every spec-keyed run the table/figure suite performs.

    The union over Table 2 and Figures 2-8 (the intervened run of
    Figure 8 is intrinsically uncacheable and excluded).  Warming these
    once leaves the entire suite free of simulation work.
    """
    specs: List[RunSpec] = []
    for name in benchmarks or suite.all_names():
        for mult in heap_mults:
            specs.append(RunSpec(benchmark=name, heap_mult=mult,
                                 coalloc=False, monitoring=False))
            specs.append(RunSpec(benchmark=name, heap_mult=mult,
                                 coalloc=True, monitoring=True))
        for interval in intervals + ("auto",):
            specs.append(RunSpec(benchmark=name, heap_mult=4.0,
                                 coalloc=False, monitoring=True,
                                 interval=interval))
        for interval in intervals:
            specs.append(RunSpec(benchmark=name, heap_mult=4.0,
                                 coalloc=True, monitoring=True,
                                 interval=interval))
    if "db" in (benchmarks or suite.all_names()):
        for mult in heap_mults:
            specs.append(RunSpec(benchmark="db", heap_mult=mult,
                                 coalloc=False, monitoring=False,
                                 gc_plan="gencopy"))
    return specs


# ---------------------------------------------------------------------------
# Table 1
# ---------------------------------------------------------------------------

@dataclass
class Table1Row:
    name: str
    origin: str
    description: str


def table1() -> List[Table1Row]:
    """The benchmark list."""
    rows = []
    for name in suite.all_names():
        workload = suite.build(name)
        if name in suite.JVM98_NAMES:
            origin = "SPEC JVM98 (largest workload, s=100, repeated)"
        elif name == "pseudojbb":
            origin = "SPEC JBB2000, fixed transaction count"
        else:
            origin = "DaCapo (version 10-2006 MR-2)"
        rows.append(Table1Row(name, origin, workload.description))
    return rows


# ---------------------------------------------------------------------------
# Table 2 — space overhead of the machine-code maps
# ---------------------------------------------------------------------------

@dataclass
class Table2Row:
    name: str
    machine_code_kb: int
    gc_maps_kb: int
    mc_maps_kb: int


#: Synthetic boot-image corpus: the VM's own compiled methods.  Sized so
#: the boot rows dominate the application rows, as in the paper; machine-
#: code maps are only generated for the library/application subset of the
#: boot image ("we consider only library and application classes and
#: leave out VM internal classes").
BOOT_CORPUS_METHODS = 12000
#: Only library/application classes of the boot image get extended maps
#: ("we consider only library and application classes and leave out VM
#: internal classes") — a minority of the boot corpus.
BOOT_MC_MAP_FRACTION = 0.13
#: Non-code boot-image content (heap objects, JTOC, type information)
#: relative to code+maps; used for the ~20% total-growth figure.
BOOT_OTHER_FACTOR = 1.0


def _boot_corpus_sizes() -> MapSizes:
    program = Program("bootimage")
    app = make_app_class(program)
    methods = add_filler_methods(program, app, BOOT_CORPUS_METHODS,
                                 body_loops=5)
    total = MapSizes()
    for i, method in enumerate(methods):
        sizes = method_map_sizes(compile_baseline(method))
        if i >= int(BOOT_CORPUS_METHODS * BOOT_MC_MAP_FRACTION):
            sizes.mc_maps = 0  # VM-internal class: no extended map
        total = total + sizes
    return total


def boot_image_growth() -> float:
    """Relative boot-image growth caused by the extended maps
    (paper: 45 MB -> 54 MB, i.e. ~20%)."""
    sizes = _boot_corpus_sizes()
    base = (sizes.machine_code + sizes.gc_maps)
    base += int(base * BOOT_OTHER_FACTOR)
    return sizes.mc_maps / base


def table2(benchmarks: Optional[List[str]] = None,
           jobs: Optional[int] = None) -> List[Table2Row]:
    """Machine code / GC map / MC map sizes per benchmark + boot image."""
    names = benchmarks or suite.all_names()
    specs = [RunSpec(benchmark=name, heap_mult=4.0, coalloc=False,
                     monitoring=False) for name in names]
    _warm(specs, jobs)
    rows = []
    for name, spec in zip(names, specs):
        result = measure(spec).result
        kb = MapSizes(*result.map_sizes).kb()
        rows.append(Table2Row(name, kb[0], kb[1], kb[2]))
    boot = _boot_corpus_sizes().kb()
    rows.append(Table2Row("boot image", boot[0], boot[1], boot[2]))
    return rows


# ---------------------------------------------------------------------------
# Figure 2 — sampling overhead
# ---------------------------------------------------------------------------

@dataclass
class OverheadRow:
    name: str
    #: interval name -> overhead fraction (0.01 = 1%).
    overhead: Dict[str, float]


def fig2_sampling_overhead(benchmarks: Optional[List[str]] = None,
                           intervals: Tuple[str, ...] = INTERVALS + ("auto",),
                           repeats: int = 1,
                           jobs: Optional[int] = None) -> List[OverheadRow]:
    """Execution-time overhead of event sampling (no co-allocation),
    relative to the no-monitoring baseline, at heap = 4x min."""
    names = benchmarks or suite.all_names()
    _warm([RunSpec(benchmark=name, heap_mult=4.0, coalloc=False,
                   monitoring=mon, interval=interval)
           for name in names
           for mon, interval in ([(False, "auto")]
                                 + [(True, i) for i in intervals])],
          jobs, repeats)
    rows = []
    for name in names:
        base = measure(RunSpec(benchmark=name, heap_mult=4.0, coalloc=False,
                               monitoring=False), repeats)
        overheads = {}
        for interval in intervals:
            mon = measure(RunSpec(benchmark=name, heap_mult=4.0,
                                  coalloc=False, monitoring=True,
                                  interval=interval), repeats)
            overheads[interval] = mon.cycles_mean / base.cycles_mean - 1.0
        rows.append(OverheadRow(name, overheads))
    return rows


# ---------------------------------------------------------------------------
# Figure 3 — number of co-allocated objects per interval
# ---------------------------------------------------------------------------

@dataclass
class CoallocRow:
    name: str
    #: interval name -> co-allocated object count.
    counts: Dict[str, int]


def fig3_coalloc_counts(benchmarks: Optional[List[str]] = None,
                        intervals: Tuple[str, ...] = INTERVALS,
                        jobs: Optional[int] = None) -> List[CoallocRow]:
    """Co-allocated objects at different sampling intervals, heap = 4x."""
    names = benchmarks or suite.all_names()
    _warm([RunSpec(benchmark=name, heap_mult=4.0, coalloc=True,
                   monitoring=True, interval=interval)
           for name in names for interval in intervals], jobs)
    rows = []
    for name in names:
        counts = {}
        for interval in intervals:
            m = measure(RunSpec(benchmark=name, heap_mult=4.0, coalloc=True,
                                monitoring=True, interval=interval))
            counts[interval] = m.coallocated
        rows.append(CoallocRow(name, counts))
    return rows


# ---------------------------------------------------------------------------
# Figure 4 — L1 miss reduction
# ---------------------------------------------------------------------------

@dataclass
class MissReductionRow:
    name: str
    baseline_misses: int
    coalloc_misses: int

    @property
    def reduction(self) -> float:
        """Fractional reduction (0.28 = 28% fewer misses)."""
        if self.baseline_misses == 0:
            return 0.0
        return 1.0 - self.coalloc_misses / self.baseline_misses


def fig4_l1_reduction(benchmarks: Optional[List[str]] = None,
                      jobs: Optional[int] = None) -> List[MissReductionRow]:
    """L1 miss reduction with co-allocation on, heap = 4x min."""
    names = benchmarks or suite.all_names()
    _warm([RunSpec(benchmark=name, heap_mult=4.0, coalloc=co,
                   monitoring=co)
           for name in names for co in (False, True)], jobs)
    rows = []
    for name in names:
        base = measure(RunSpec(benchmark=name, heap_mult=4.0, coalloc=False,
                               monitoring=False))
        co = measure(RunSpec(benchmark=name, heap_mult=4.0, coalloc=True,
                             monitoring=True))
        rows.append(MissReductionRow(name, base.l1_misses, co.l1_misses))
    return rows


# ---------------------------------------------------------------------------
# Figure 5 — normalized execution time across heap sizes
# ---------------------------------------------------------------------------

@dataclass
class ExecTimeRow:
    name: str
    #: heap multiple -> normalized time (coalloc+monitoring / plain VM).
    normalized: Dict[float, float]


def fig5_exec_time(benchmarks: Optional[List[str]] = None,
                   heap_mults: Tuple[float, ...] = HEAP_MULTS,
                   repeats: int = 1,
                   jobs: Optional[int] = None) -> List[ExecTimeRow]:
    """Execution time of the full system relative to the plain VM,
    heap sizes 1x..4x, auto-selected sampling interval."""
    names = benchmarks or suite.all_names()
    _warm([RunSpec(benchmark=name, heap_mult=mult, coalloc=co,
                   monitoring=co)
           for name in names for mult in heap_mults
           for co in (False, True)], jobs, repeats)
    rows = []
    for name in names:
        normalized = {}
        for mult in heap_mults:
            base = measure(RunSpec(benchmark=name, heap_mult=mult,
                                   coalloc=False, monitoring=False), repeats)
            co = measure(RunSpec(benchmark=name, heap_mult=mult, coalloc=True,
                                 monitoring=True), repeats)
            normalized[mult] = co.cycles_mean / base.cycles_mean
        rows.append(ExecTimeRow(name, normalized))
    return rows


# ---------------------------------------------------------------------------
# Figure 6 — GenCopy vs GenMS (+ co-allocation) on db
# ---------------------------------------------------------------------------

@dataclass
class GCPlanComparison:
    benchmark: str
    #: heap multiple -> {config name -> cycles}.
    cycles: Dict[float, Dict[str, int]]

    def normalized(self, mult: float, config: str) -> float:
        """Time relative to plain GenMS at the same heap size."""
        return self.cycles[mult][config] / self.cycles[mult]["genms"]


def fig6_gencopy_vs_genms(benchmark: str = "db",
                          heap_mults: Tuple[float, ...] = HEAP_MULTS,
                          jobs: Optional[int] = None) -> GCPlanComparison:
    """db under GenMS, GenMS+co-allocation, and GenCopy (section 6.3)."""
    _warm([RunSpec(benchmark=benchmark, heap_mult=mult, coalloc=co,
                   monitoring=co, gc_plan=plan)
           for mult in heap_mults
           for co, plan in ((False, "genms"), (True, "genms"),
                            (False, "gencopy"))], jobs)
    cycles: Dict[float, Dict[str, int]] = {}
    for mult in heap_mults:
        genms = measure(RunSpec(benchmark=benchmark, heap_mult=mult,
                                coalloc=False, monitoring=False))
        coalloc = measure(RunSpec(benchmark=benchmark, heap_mult=mult,
                                  coalloc=True, monitoring=True))
        gencopy = measure(RunSpec(benchmark=benchmark, heap_mult=mult,
                                  coalloc=False, monitoring=False,
                                  gc_plan="gencopy"))
        cycles[mult] = {
            "genms": int(genms.cycles_mean),
            "genms+coalloc": int(coalloc.cycles_mean),
            "gencopy": int(gencopy.cycles_mean),
        }
    return GCPlanComparison(benchmark, cycles)


# ---------------------------------------------------------------------------
# Figure 7 — misses over time for String objects (db)
# ---------------------------------------------------------------------------

@dataclass
class TimelineResult:
    benchmark: str
    field_name: str
    #: [(end_cycle, events in period), ...]
    per_period: List[Tuple[int, int]]
    cumulative: List[Tuple[int, int]]
    moving_average: List[float]
    coallocated: int


def fig7_db_timeline(benchmark: str = "db") -> TimelineResult:
    """Cumulative (7a) and per-period (7b) misses attributed to
    ``String::value`` while co-allocation is active."""
    result = measure(RunSpec(benchmark=benchmark, heap_mult=4.0,
                             coalloc=True, monitoring=True)).result
    name = suite.build(benchmark).program.string_class.field(
        "value").qualified_name
    per_period = result.series(name)
    return TimelineResult(
        benchmark=benchmark,
        field_name=name,
        per_period=per_period,
        cumulative=result.cumulative_series(name),
        moving_average=result.moving_average([n for _, n in per_period]),
        coallocated=result.gc_stats.coallocated_objects,
    )


# ---------------------------------------------------------------------------
# Figure 8 — detecting and reverting a poor placement decision
# ---------------------------------------------------------------------------

@dataclass
class RevertResult:
    benchmark: str
    per_period: List[Tuple[int, int]]
    moving_average: List[float]
    gap_applied_period: int
    reverted: bool
    reverted_period: Optional[int]
    baseline_rate: float
    peak_rate: float
    final_rate: float


def fig8_revert(benchmark: str = "db",
                intervene_fraction: float = 0.35,
                lineage=None) -> RevertResult:
    """Insert one cache line of empty space between String and char[]
    mid-run; the monitoring feedback must detect the regression and
    switch back (section 6.4, Figure 8).

    ``lineage`` (an optional :class:`repro.lineage.DecisionLedger`)
    rides on the intervened VM, so the revert's full justification
    chain — gap change, experiment baseline, verdicts, revert — is
    recorded; ``repro explain --fig8`` reads it back.
    """
    # Expected run length from the normal co-allocation run.
    normal = measure(RunSpec(benchmark=benchmark, heap_mult=4.0,
                             coalloc=True, monitoring=True)).result
    intervene_at = int(normal.cycles * intervene_fraction)

    vm, workload = make_vm(benchmark, RunSpec(benchmark=benchmark,
                                              heap_mult=4.0, coalloc=True,
                                              monitoring=True),
                           lineage=lineage)
    fld = vm.program.string_class.field("value")
    state = {"gap_period": -1}

    def intervene(now: int) -> None:
        # The paper: "we instructed the GC manually to place one cache
        # line of empty space (128 bytes) between the String and the
        # char[] objects".
        vm.coalloc_policy.set_gap(128)
        state["gap_period"] = len(vm.controller.monitor.periods)
        vm.controller.feedback.begin_experiment(
            "gap-128", fld, revert=lambda: vm.coalloc_policy.set_gap(0))

    vm.scheduler.at(intervene_at, intervene)
    vm.run()

    monitor = vm.controller.monitor
    per_period = monitor.series(fld)
    values = [n for _, n in per_period]
    moving = monitor.moving_average(values)
    experiments = vm.controller.feedback.experiments
    exp = experiments[0] if experiments else None
    gap_period = state["gap_period"]
    after = moving[gap_period:] if gap_period >= 0 else moving
    return RevertResult(
        benchmark=benchmark,
        per_period=per_period,
        moving_average=moving,
        gap_applied_period=gap_period,
        reverted=bool(exp and exp.reverted),
        reverted_period=exp.reverted_period if exp else None,
        baseline_rate=exp.baseline_rate if exp else 0.0,
        peak_rate=max(after) if after else 0.0,
        final_rate=moving[-1] if moving else 0.0,
    )


# ---------------------------------------------------------------------------
# Revert-storm seeding (repro doctor --storm)
# ---------------------------------------------------------------------------

class StormDriver:
    """Repeatedly applies a known-bad placement gap so the feedback
    engine reverts it, again and again — a seeded *revert storm* for the
    health detectors to flag (``repro doctor --storm``).

    Driven once per measurement period (scheduled just after the
    controller's period close, so the monitor state it reads is fresh):
    whenever no experiment is active, the previous one has been reverted,
    and the judged field is currently hot (a zero baseline can never
    regress, see :meth:`FeedbackEngine.on_period`), it re-applies the
    gap and opens the next experiment.  A class with bound-method
    callbacks, not closures, so the scheduler heap stays picklable.
    """

    def __init__(self, vm, field, count: int = 3, gap: int = 128,
                 cooldown_periods: int = 2, recover_factor: float = 1.5):
        self.vm = vm
        self.field = field
        self.gap = gap
        self.remaining = count
        self.cooldown_periods = cooldown_periods
        #: Re-arm only once the rate has fallen back to within this
        #: factor of the first experiment's baseline: after a revert the
        #: rate recovers *gradually* (mature objects keep their bad
        #: placement, Figure 8), and an experiment begun against that
        #: still-elevated baseline can never regress 25% further.
        self.recover_factor = recover_factor
        self._baseline0: Optional[float] = None
        self._cooldown = 0
        self.begun = 0

    def on_period(self, now: int) -> None:
        if self.remaining <= 0:
            return
        feedback = self.vm.controller.feedback
        if feedback.active_experiments():
            return
        if self._cooldown > 0:
            self._cooldown -= 1
            return
        rate = self.vm.controller.monitor.recent_rate(self.field)
        if rate <= 0:
            return
        if self._baseline0 is not None \
                and rate > self._baseline0 * self.recover_factor:
            return
        self.vm.coalloc_policy.set_gap(self.gap)
        self.begun += 1
        self.remaining -= 1
        self._cooldown = self.cooldown_periods
        exp = feedback.begin_experiment(f"storm-{self.begun}", self.field,
                                        revert=self._revert)
        if self._baseline0 is None:
            self._baseline0 = exp.baseline_rate

    def _revert(self) -> None:
        self.vm.coalloc_policy.set_gap(0)

    def reverted(self) -> int:
        feedback = self.vm.controller.feedback
        return sum(1 for e in feedback.reverted_experiments()
                   if e.name.startswith("storm-"))


def resolve_field(program: Program, qualified: str):
    """``"Class::field"`` -> the live :class:`FieldInfo` of ``program``."""
    class_name, field_name = qualified.split("::")
    return program.klass(class_name).field(field_name)


def seed_revert_storm(vm, field, count: int = 3, gap: int = 128,
                      cooldown_periods: int = 2) -> StormDriver:
    """Attach a :class:`StormDriver` to a co-allocating, monitored VM.

    Call before ``vm.run()``; the driver paces itself off the
    measurement period.  Returns the driver so callers can report how
    many experiments were begun/reverted.
    """
    if vm.coalloc_policy is None:
        raise ValueError("seed_revert_storm needs a co-allocating VM "
                         "(RunSpec coalloc=True)")
    if vm.controller is None:
        raise ValueError("seed_revert_storm needs a monitored VM "
                         "(RunSpec monitoring=True)")
    driver = StormDriver(vm, field, count=count, gap=gap,
                         cooldown_periods=cooldown_periods)
    # Offset by one cycle so each firing sorts after the controller's
    # period close on the scheduler heap.
    vm.scheduler.every(1, vm.config.monitor.period_cycles, driver.on_period)
    return driver
