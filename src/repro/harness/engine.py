"""Parallel experiment execution engine.

The paper's evaluation is dozens of independent, deterministic
:class:`~repro.harness.runner.RunSpec` runs.  They share no state — every
run builds a fresh guest program and VM — so the engine fans them out
across cores with a :class:`~concurrent.futures.ProcessPoolExecutor` and
collects results in input order, which (with a fixed seed per spec)
makes parallel output bit-identical to serial output.

Workers return portable :class:`~repro.harness.record.RunRecord` JSON;
the parent installs each record into the runner's memo and the
persistent disk cache, so a warmed engine leaves every later
``measure()`` call a cache hit.

Knobs:

* ``jobs`` argument > ``REPRO_JOBS`` env > ``os.cpu_count()``;
  ``jobs=1`` is the plain serial path (debugger-friendly: no
  subprocesses at all),
* ``trace_dir`` — when set, every worker builds a
  :class:`~repro.telemetry.Telemetry` bundle for its run and exports a
  per-run Chrome trace into the directory, preserving span export from
  worker processes.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import asdict
from typing import Iterable, List, Optional

from repro.harness import runner
from repro.harness.diskcache import spec_key
from repro.harness.record import RunRecord
from repro.harness.runner import RunSpec


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Worker count: explicit arg > ``REPRO_JOBS`` > ``os.cpu_count()``."""
    if jobs is None:
        env = os.environ.get("REPRO_JOBS", "").strip()
        jobs = int(env) if env else (os.cpu_count() or 1)
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    return jobs


def _run_one(payload) -> dict:
    """Worker entry point: simulate one spec, return its record as JSON.

    Top-level (picklable) and self-contained: reconstructs the spec,
    optionally attaches a fresh telemetry bundle, and exports the run's
    spans before returning, so tracing survives process boundaries.
    """
    spec_dict, trace_dir = payload
    spec = RunSpec(**spec_dict)
    telemetry = None
    if trace_dir:
        from repro.telemetry import Telemetry

        telemetry = Telemetry()
    result = runner.execute(spec, telemetry=telemetry)
    record = RunRecord.from_result(result)
    if trace_dir:
        from repro.telemetry.export import write_chrome_trace

        path = os.path.join(
            trace_dir, f"{spec.benchmark}-{spec_key(spec)[:10]}.json")
        write_chrome_trace(path, telemetry.tracer, telemetry.metrics,
                           dict(spec_dict))
    return record.to_json()


def run_specs(specs: Iterable[RunSpec], jobs: Optional[int] = None,
              trace_dir: Optional[str] = None) -> List[RunRecord]:
    """Compute (or recall) records for ``specs``; results in input order.

    Every unique uncached spec is simulated exactly once; duplicates and
    cache hits are free.  The round trip through RunRecord JSON is the
    same in the serial and parallel paths, so ``jobs`` can never change
    a result — only how fast it arrives.
    """
    specs = list(specs)
    jobs = resolve_jobs(jobs)
    if trace_dir:
        os.makedirs(trace_dir, exist_ok=True)

    missing: List[RunSpec] = []
    seen = set()
    for spec in specs:
        if spec not in seen:
            seen.add(spec)
            if runner.cached_record(spec) is None:
                missing.append(spec)

    if missing:
        payloads = [(asdict(spec), trace_dir) for spec in missing]
        if jobs == 1 or len(missing) == 1:
            docs = map(_run_one, payloads)
        else:
            pool = ProcessPoolExecutor(max_workers=min(jobs, len(missing)))
            with pool:
                # pool.map preserves input order: collection is
                # deterministic no matter which worker finishes first.
                docs = list(pool.map(_run_one, payloads))
        for spec, doc in zip(missing, docs):
            runner.store_record(spec, RunRecord.from_json(doc))

    return [runner.record_for(spec) for spec in specs]


def warm(specs: Iterable[RunSpec], jobs: Optional[int] = None,
         trace_dir: Optional[str] = None) -> int:
    """Precompute records for ``specs``; returns how many were missing.

    After warming, serial harness code (``measure`` loops in the figure
    drivers) does zero simulation work for these specs.
    """
    specs = list(specs)
    uncached = sum(1 for spec in dict.fromkeys(specs)
                   if runner.cached_record(spec) is None)
    run_specs(specs, jobs=jobs, trace_dir=trace_dir)
    return uncached
