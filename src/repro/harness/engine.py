"""Parallel experiment execution engine.

The paper's evaluation is dozens of independent, deterministic
:class:`~repro.harness.runner.RunSpec` runs.  They share no state — every
run builds a fresh guest program and VM — so the engine fans them out
across cores with a :class:`~concurrent.futures.ProcessPoolExecutor` and
collects results in input order, which (with a fixed seed per spec)
makes parallel output bit-identical to serial output.

Workers return portable :class:`~repro.harness.record.RunRecord` JSON;
the parent installs each record into the runner's memo and the
persistent disk cache, so a warmed engine leaves every later
``measure()`` call a cache hit.

Knobs:

* ``jobs`` argument > ``REPRO_JOBS`` env > ``os.cpu_count()``;
  ``jobs=1`` is the plain serial path (debugger-friendly: no
  subprocesses at all),
* ``trace_dir`` — when set, every worker builds a
  :class:`~repro.telemetry.Telemetry` bundle for its run and exports a
  per-run Chrome trace into the directory, preserving span export from
  worker processes,
* ``progress`` — a :class:`ProgressSink` receiving structured job
  events (queued / started / finished / cache-hit, with an ETA derived
  from completed-job wall times).  :class:`StderrProgress` renders them
  as one-line updates, :class:`JsonlProgress` appends them to an
  append-only JSONL event log, and :func:`set_default_progress`
  installs a process-wide default so the figure drivers stay
  signature-stable (the CLI's ``--progress`` / ``--progress-log``).

Progress events carry harness wall-clock times — they describe the
*fleet*, not the simulation, so they are exempt from (and irrelevant
to) the simulated-determinism guarantees.
"""

from __future__ import annotations

import json
import math
import os
import sys
import threading
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import asdict, dataclass
from typing import Iterable, List, Optional, TextIO

try:  # Protocol: typing on 3.8+, fallback keeps 3.7 importable
    from typing import Protocol
except ImportError:  # pragma: no cover
    Protocol = object  # type: ignore[assignment]

from repro.harness import runner
from repro.harness.diskcache import spec_key
from repro.harness.record import RunRecord
from repro.harness.runner import RunSpec


# ---------------------------------------------------------------------------
# Fleet progress
# ---------------------------------------------------------------------------

def estimate_eta(elapsed: float, completed: int, total: int) -> Optional[float]:
    """Remaining wall time from the mean pace so far, or None.

    Guarded against every degenerate batch: nothing completed yet (all
    cache hits, or a clock that has not advanced past the first job),
    zero/negative elapsed time, and non-finite intermediates — an ETA is
    either a finite non-negative float or absent, never ``inf``/``nan``
    in a progress line or a JSONL event log.
    """
    if completed <= 0 or total <= completed:
        return None if total != completed else 0.0
    if not math.isfinite(elapsed) or elapsed < 0:
        return None
    eta = elapsed / completed * (total - completed)
    if not math.isfinite(eta):
        return None
    return max(0.0, eta)


@dataclass
class JobEvent:
    """One structured fleet event.

    ``kind`` is ``queued`` / ``started`` / ``finished`` / ``cache-hit``.
    ``wall_s`` (finished only) is the job's wall time; ``eta_s``
    (finished only) extrapolates the remaining work from the mean wall
    time of the jobs completed so far.

    ``ts`` (monotonic seconds, stamped at construction unless given)
    orders events when several streams are multiplexed into one log;
    ``batch`` tags every event of one engine call with the submitter's
    batch id, so a consumer tailing a shared stream — the fleet
    server's ``/events`` endpoint — can demux concurrent batches.
    Both are additive: consumers of the pre-existing keys are
    unaffected, and ``batch`` is omitted from the JSON when unset.
    """

    kind: str
    benchmark: str
    spec_key: str
    index: int            # position within this batch (0-based)
    total: int            # jobs in this batch (cache hits excluded)
    completed: int = 0    # jobs finished so far, including this one
    wall_s: Optional[float] = None
    eta_s: Optional[float] = None
    ts: Optional[float] = None     # monotonic seconds (auto-stamped)
    batch: Optional[str] = None    # submitting batch id, if any

    def __post_init__(self):
        if self.ts is None:
            self.ts = time.monotonic()

    def to_json(self) -> dict:
        doc = {"type": "job", "kind": self.kind,
               "benchmark": self.benchmark, "spec": self.spec_key,
               "index": self.index, "total": self.total,
               "completed": self.completed}
        if self.ts is not None and math.isfinite(self.ts):
            doc["ts"] = round(self.ts, 4)
        if self.batch is not None:
            doc["batch"] = self.batch
        if self.wall_s is not None and math.isfinite(self.wall_s):
            doc["wall_s"] = round(self.wall_s, 4)
        if self.eta_s is not None and math.isfinite(self.eta_s):
            doc["eta_s"] = round(self.eta_s, 1)
        return doc


class ProgressSink(Protocol):
    """Receiver of :class:`JobEvent` streams."""

    def emit(self, event: JobEvent) -> None:  # pragma: no cover - protocol
        ...

    def close(self) -> None:  # pragma: no cover - protocol
        ...


class StderrProgress:
    """One line per event on stderr (never stdout: reports stay clean)."""

    def __init__(self, stream: Optional[TextIO] = None):
        self.stream = stream if stream is not None else sys.stderr

    def emit(self, event: JobEvent) -> None:
        parts = [f"[engine] {event.kind:>9} {event.benchmark}"
                 f" ({event.spec_key[:10]})"]
        if event.kind == "finished":
            parts.append(f" {event.completed}/{event.total}")
            if event.wall_s is not None:
                parts.append(f" in {event.wall_s:.1f}s")
            if event.eta_s is not None and math.isfinite(event.eta_s) \
                    and event.completed < event.total:
                parts.append(f", eta {event.eta_s:.0f}s")
        print("".join(parts), file=self.stream, flush=True)

    def close(self) -> None:
        pass


class JsonlProgress:
    """Append-only JSONL event log (one self-describing object/line)."""

    def __init__(self, path: str):
        self.path = path
        parent = os.path.dirname(path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        self._fh = open(path, "a")

    def emit(self, event: JobEvent) -> None:
        self._fh.write(json.dumps(event.to_json()))
        self._fh.write("\n")
        self._fh.flush()

    def close(self) -> None:
        self._fh.close()


class TeeProgress:
    """Fan one event stream out to several sinks.

    ``close()`` is exception-safe: every sink's ``close`` runs even
    when an earlier one raises (the first failure is re-raised after
    the sweep).  The fleet server tees one engine stream to many
    subscriber sinks, and one subscriber's broken pipe must not leak
    the others' file handles.
    """

    def __init__(self, *sinks: ProgressSink):
        self.sinks = [s for s in sinks if s is not None]

    def emit(self, event: JobEvent) -> None:
        for sink in self.sinks:
            sink.emit(event)

    def close(self) -> None:
        first_error: Optional[BaseException] = None
        for sink in self.sinks:
            try:
                sink.close()
            except Exception as exc:
                if first_error is None:
                    first_error = exc
        if first_error is not None:
            raise first_error


#: Process-wide default sink (installed by the CLI's --progress flags);
#: an explicit ``progress=`` argument always wins.  Guarded by a lock:
#: the fleet server installs/clears sinks from its event loop thread
#: while engine calls resolve them from worker threads.
_DEFAULT_PROGRESS: Optional[ProgressSink] = None
_DEFAULT_PROGRESS_LOCK = threading.Lock()


def set_default_progress(sink: Optional[ProgressSink]) -> None:
    """Install (or clear, with None) the process-wide progress sink."""
    global _DEFAULT_PROGRESS
    with _DEFAULT_PROGRESS_LOCK:
        _DEFAULT_PROGRESS = sink


def _resolve_progress(progress: Optional[ProgressSink]) -> Optional[ProgressSink]:
    if progress is not None:
        return progress
    with _DEFAULT_PROGRESS_LOCK:
        return _DEFAULT_PROGRESS


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Worker count: explicit arg > ``REPRO_JOBS`` > ``os.cpu_count()``."""
    if jobs is None:
        env = os.environ.get("REPRO_JOBS", "").strip()
        jobs = int(env) if env else (os.cpu_count() or 1)
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    return jobs


def _run_one(payload) -> dict:
    """Worker entry point: simulate one spec, return its record as JSON.

    Top-level (picklable) and self-contained: reconstructs the spec,
    optionally attaches a fresh telemetry bundle, and exports the run's
    spans before returning, so tracing survives process boundaries.
    """
    spec_dict, trace_dir = payload
    spec = RunSpec(**spec_dict)
    telemetry = None
    if trace_dir:
        from repro.telemetry import Telemetry

        telemetry = Telemetry()
    result = runner.execute(spec, telemetry=telemetry)
    record = runner.record_from_result(spec, result)
    if trace_dir:
        from repro.telemetry.export import write_chrome_trace

        path = os.path.join(
            trace_dir, f"{spec.benchmark}-{spec_key(spec)[:10]}.json")
        write_chrome_trace(path, telemetry.tracer, telemetry.metrics,
                           dict(spec_dict))
    return record.to_json()


def run_specs(specs: Iterable[RunSpec], jobs: Optional[int] = None,
              trace_dir: Optional[str] = None,
              progress: Optional[ProgressSink] = None,
              batch: Optional[str] = None) -> List[RunRecord]:
    """Compute (or recall) records for ``specs``; results in input order.

    Every unique uncached spec is simulated exactly once; duplicates and
    cache hits are free.  The round trip through RunRecord JSON is the
    same in the serial and parallel paths, so ``jobs`` can never change
    a result — only how fast it arrives.  ``progress`` (or the default
    installed via :func:`set_default_progress`) observes the fleet;
    ``batch`` tags every emitted event with the submitter's batch id so
    concurrent engine calls sharing one sink stay demuxable.
    """
    specs = list(specs)
    jobs = resolve_jobs(jobs)
    progress = _resolve_progress(progress)
    if trace_dir:
        os.makedirs(trace_dir, exist_ok=True)

    missing: List[RunSpec] = []
    seen = set()
    for spec in specs:
        if spec not in seen:
            seen.add(spec)
            if runner.cached_record(spec) is None:
                missing.append(spec)
            elif progress is not None:
                progress.emit(JobEvent("cache-hit", spec.benchmark,
                                       spec_key(spec), index=len(seen) - 1,
                                       total=0, batch=batch))

    if missing:
        total = len(missing)
        keys = [spec_key(spec) for spec in missing]
        if progress is not None:
            for i, spec in enumerate(missing):
                progress.emit(JobEvent("queued", spec.benchmark, keys[i],
                                       index=i, total=total, batch=batch))
        payloads = [(asdict(spec), trace_dir) for spec in missing]
        docs: List[Optional[dict]] = [None] * total
        started = time.monotonic()
        completed = 0

        def note_finished(i: int, wall_s: float) -> None:
            nonlocal completed
            completed += 1
            if progress is not None:
                elapsed = time.monotonic() - started
                eta = estimate_eta(elapsed, completed, total)
                progress.emit(JobEvent(
                    "finished", missing[i].benchmark, keys[i], index=i,
                    total=total, completed=completed, wall_s=wall_s,
                    eta_s=eta, batch=batch))

        if jobs == 1 or total == 1:
            for i, payload in enumerate(payloads):
                if progress is not None:
                    progress.emit(JobEvent("started", missing[i].benchmark,
                                           keys[i], index=i, total=total,
                                           batch=batch))
                t0 = time.monotonic()
                docs[i] = _run_one(payload)
                note_finished(i, time.monotonic() - t0)
        else:
            pool = ProcessPoolExecutor(max_workers=min(jobs, total))
            with pool:
                # Futures are collected as they complete (for live
                # progress) but installed by input index, so the result
                # order is deterministic no matter which worker
                # finishes first.
                submit_t0 = {}
                futures = {}
                for i, payload in enumerate(payloads):
                    fut = pool.submit(_run_one, payload)
                    futures[fut] = i
                    submit_t0[i] = time.monotonic()
                    if progress is not None:
                        progress.emit(JobEvent("started",
                                               missing[i].benchmark,
                                               keys[i], index=i,
                                               total=total, batch=batch))
                pending = set(futures)
                while pending:
                    done, pending = wait(pending,
                                         return_when=FIRST_COMPLETED)
                    for fut in done:
                        i = futures[fut]
                        docs[i] = fut.result()
                        note_finished(i, time.monotonic() - submit_t0[i])
        for spec, doc in zip(missing, docs):
            runner.store_record(spec, RunRecord.from_json(doc))

    return [runner.record_for(spec) for spec in specs]


def _run_leg(payload) -> dict:
    """Worker entry point: simulate one checkpoint leg of one spec.

    A leg starts from a shipped snapshot (or cycle 0) and advances to
    the next absolute ``leg_cycles`` grid boundary.  An unfinished leg
    returns its boundary snapshot (wire form) for the parent to ship
    into the next leg; the final leg runs ``finish()`` and mints the
    record in-worker, exactly like :func:`_run_one`.
    """
    spec_dict, snap_data, leg_cycles = payload
    spec = RunSpec(**spec_dict)
    from repro.vm.snapshot import Snapshot

    if snap_data is not None:
        vm = Snapshot.from_bytes(snap_data).restore()
    else:
        from repro.vm.vmcore import VM
        from repro.workloads import suite

        workload = suite.build(spec.benchmark)
        config = spec.system_config(workload.min_heap_bytes)
        vm = VM(workload.program, config, compilation_plan=workload.plan)
        vm.begin()
    grid = (vm.cpu.cycles // leg_cycles + 1) * leg_cycles
    stop = grid if spec.until_cycles is None \
        else min(grid, spec.until_cycles)
    done = vm.advance(until_cycles=stop)
    truncated = (not done and spec.until_cycles is not None
                 and vm.cpu.cycles >= spec.until_cycles)
    if not done and not truncated:
        return {"kind": "snapshot",
                "data": Snapshot.capture(vm).to_bytes()}
    end_state = None if done else Snapshot.capture(vm).to_bytes()
    record = runner.record_from_result(spec, vm.finish())
    return {"kind": "record", "record": record.to_json(),
            "end_state": end_state}


def run_specs_sharded(specs: Iterable[RunSpec], leg_cycles: int,
                      jobs: Optional[int] = None,
                      progress: Optional[ProgressSink] = None,
                      batch: Optional[str] = None,
                      ) -> List[RunRecord]:
    """Compute records with each run pipelined as checkpoint legs.

    One run cannot be parallelized internally — leg N+1 needs leg N's
    end state — but while a spec waits for its next leg to be
    scheduled, *other specs'* legs fill the pool, and the parent
    overlaps its per-leg analysis work (installing checkpoints and
    finished records into the cache layers) with the simulation still
    in flight.  A suite of long runs therefore finishes in roughly
    ``max`` instead of ``sum`` of the per-spec chains on multi-core.

    Results are bit-identical to :func:`run_specs`: legs stop on the
    same scheduler-quantum boundaries the unbroken run passes through,
    and every leg boundary snapshot feeds the runner's snapshot cache
    so later ``until_cycles`` extensions resume instead of re-running.
    """
    if leg_cycles < 1:
        raise ValueError(f"leg_cycles must be >= 1, got {leg_cycles}")
    specs = list(specs)
    jobs = resolve_jobs(jobs)
    progress = _resolve_progress(progress)

    from repro.vm.snapshot import Snapshot

    missing: List[RunSpec] = []
    seen = set()
    for spec in specs:
        if spec not in seen:
            seen.add(spec)
            if runner.cached_record(spec) is None:
                missing.append(spec)
            elif progress is not None:
                progress.emit(JobEvent("cache-hit", spec.benchmark,
                                       spec_key(spec), index=len(seen) - 1,
                                       total=0, batch=batch))

    if missing:
        total = len(missing)
        keys = [spec_key(spec) for spec in missing]
        payloads = [(asdict(spec), None, leg_cycles) for spec in missing]
        started = time.monotonic()
        completed = 0

        def absorb(i: int, outcome: dict) -> Optional[tuple]:
            """Install a leg's product; next payload if the chain
            continues, None when the spec is done."""
            nonlocal completed
            for data in (outcome.get("data"), outcome.get("end_state")):
                if data is not None:
                    runner.store_snapshot(missing[i],
                                          Snapshot.from_bytes(data))
            if outcome["kind"] == "snapshot":
                if progress is not None:
                    progress.emit(JobEvent("leg", missing[i].benchmark,
                                           keys[i], index=i, total=total,
                                           completed=completed, batch=batch))
                return (payloads[i][0], outcome["data"], leg_cycles)
            runner.store_record(missing[i],
                                RunRecord.from_json(outcome["record"]))
            completed += 1
            if progress is not None:
                elapsed = time.monotonic() - started
                eta = estimate_eta(elapsed, completed, total)
                progress.emit(JobEvent("finished", missing[i].benchmark,
                                       keys[i], index=i, total=total,
                                       completed=completed, eta_s=eta,
                                       batch=batch))
            return None

        if progress is not None:
            for i, spec in enumerate(missing):
                progress.emit(JobEvent("queued", spec.benchmark, keys[i],
                                       index=i, total=total, batch=batch))
        if jobs == 1 or total == 1:
            for i in range(total):
                payload = payloads[i]
                while payload is not None:
                    payload = absorb(i, _run_leg(payload))
        else:
            with ProcessPoolExecutor(max_workers=min(jobs, total)) as pool:
                futures = {pool.submit(_run_leg, payloads[i]): i
                           for i in range(total)}
                pending = set(futures)
                while pending:
                    done, pending = wait(pending,
                                         return_when=FIRST_COMPLETED)
                    for fut in done:
                        i = futures.pop(fut)
                        nxt = absorb(i, fut.result())
                        if nxt is not None:
                            fresh = pool.submit(_run_leg, nxt)
                            futures[fresh] = i
                            pending.add(fresh)

    return [runner.record_for(spec) for spec in specs]


def warm(specs: Iterable[RunSpec], jobs: Optional[int] = None,
         trace_dir: Optional[str] = None,
         progress: Optional[ProgressSink] = None,
         batch: Optional[str] = None) -> int:
    """Precompute records for ``specs``; returns how many were missing.

    After warming, serial harness code (``measure`` loops in the figure
    drivers) does zero simulation work for these specs.
    """
    specs = list(specs)
    uncached = sum(1 for spec in dict.fromkeys(specs)
                   if runner.cached_record(spec) is None)
    run_specs(specs, jobs=jobs, trace_dir=trace_dir, progress=progress,
              batch=batch)
    return uncached
