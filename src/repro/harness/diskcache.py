"""Persistent on-disk result cache for the experiment harness.

Re-running any figure — locally or in CI — should cost simulation time
only once.  Runs are deterministic functions of their :class:`RunSpec`
*and* of the simulator's code, so the cache key combines both:

* **spec key** — a hash of the spec's canonical JSON form,
* **code version** — a hash over every source file of the ``repro``
  package (plus the record schema version).  Any change to the
  simulator, GC, JIT, or harness invalidates every cached result at
  once; stale versions are swept by :meth:`DiskCache.clear` or simply
  ignored.

Layout: one JSON file per entry under ``<root>/<version>/<spec>.json``,
written atomically (tmp file + ``os.replace``), so concurrent writers —
parallel workers, two CI jobs sharing a cache volume — can never leave a
torn file behind.  A truncated or otherwise corrupt entry is treated as
a miss and deleted; the result is recomputed, never trusted.

Environment knobs:

* ``REPRO_CACHE_DIR`` — cache root (default ``results/.cache``),
* ``REPRO_DISK_CACHE=0`` — disable the disk layer entirely (the
  in-process memo still applies).
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
from dataclasses import asdict
from typing import Optional

from repro.harness.record import RunRecord, SCHEMA_VERSION

#: Default cache root, relative to the working directory.
DEFAULT_ROOT = os.path.join("results", ".cache")

_CODE_VERSION: Optional[str] = None


def cache_enabled() -> bool:
    """Whether the disk layer is switched on (``REPRO_DISK_CACHE``)."""
    return os.environ.get("REPRO_DISK_CACHE", "1") != "0"


def cache_root() -> str:
    return os.environ.get("REPRO_CACHE_DIR", DEFAULT_ROOT)


def code_version() -> str:
    """Hash of the ``repro`` package sources + the record schema.

    Computed once per process; a one-line change anywhere in the
    simulator yields a different version, so cached results can never
    outlive the code that produced them.
    """
    global _CODE_VERSION
    if _CODE_VERSION is None:
        import repro

        digest = hashlib.sha256()
        digest.update(f"schema:{SCHEMA_VERSION}".encode())
        pkg_dir = os.path.dirname(os.path.abspath(repro.__file__))
        sources = []
        for dirpath, _dirnames, filenames in os.walk(pkg_dir):
            for name in filenames:
                if name.endswith(".py"):
                    path = os.path.join(dirpath, name)
                    sources.append((os.path.relpath(path, pkg_dir), path))
        for relpath, path in sorted(sources):
            digest.update(relpath.encode())
            with open(path, "rb") as fh:
                digest.update(fh.read())
        _CODE_VERSION = digest.hexdigest()[:16]
    return _CODE_VERSION


def spec_key(spec) -> str:
    """Stable hash of one RunSpec's canonical JSON form."""
    canonical = json.dumps(asdict(spec), sort_keys=True)
    return hashlib.sha256(canonical.encode()).hexdigest()[:24]


class DiskCache:
    """One directory of spec-keyed run records for one code version."""

    def __init__(self, root: Optional[str] = None,
                 version: Optional[str] = None):
        self.root = root or cache_root()
        self.version = version or code_version()
        #: Session counters (surfaced by ``cache stats`` and tests).
        self.hits = 0
        self.misses = 0

    def _entry_path(self, spec) -> str:
        return os.path.join(self.root, self.version, spec_key(spec) + ".json")

    # -- read/write ----------------------------------------------------------

    def get(self, spec) -> Optional[RunRecord]:
        """Load the cached record for ``spec``, or None.

        Any unreadable entry — truncated write, foreign schema, hand
        edit — is deleted and reported as a miss: the cache degrades to
        recomputation, never to wrong results.
        """
        path = self._entry_path(spec)
        try:
            with open(path, "r") as fh:
                doc = json.load(fh)
            record = RunRecord.from_json(doc["record"])
        except FileNotFoundError:
            self.misses += 1
            return None
        except (OSError, ValueError, KeyError, TypeError):
            self.misses += 1
            try:
                os.remove(path)
            except OSError:
                pass
            return None
        self.hits += 1
        return record

    def put(self, spec, record: RunRecord) -> None:
        """Store ``record`` atomically (tmp file + rename)."""
        path = self._entry_path(spec)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        doc = {"version": self.version, "spec": asdict(spec),
               "record": record.to_json()}
        tmp = f"{path}.tmp.{os.getpid()}"
        with open(tmp, "w") as fh:
            json.dump(doc, fh)
        os.replace(tmp, path)

    # -- maintenance ---------------------------------------------------------

    def clear(self) -> int:
        """Drop every entry (all code versions); returns files removed."""
        removed = 0
        if os.path.isdir(self.root):
            for name in os.listdir(self.root):
                path = os.path.join(self.root, name)
                if os.path.isdir(path):
                    removed += sum(len(files) for _, _, files in os.walk(path))
                    shutil.rmtree(path, ignore_errors=True)
                else:
                    os.remove(path)
                    removed += 1
        return removed

    def stats(self) -> dict:
        """Entry counts and sizes, current version vs. stale versions."""
        current = stale = total_bytes = 0
        if os.path.isdir(self.root):
            for dirpath, _dirnames, filenames in os.walk(self.root):
                for name in filenames:
                    if not name.endswith(".json"):
                        continue
                    path = os.path.join(dirpath, name)
                    try:
                        total_bytes += os.path.getsize(path)
                    except OSError:
                        continue
                    if os.path.basename(dirpath) == self.version:
                        current += 1
                    else:
                        stale += 1
        return {
            "root": self.root,
            "version": self.version,
            "entries": current,
            "stale_entries": stale,
            "bytes": total_bytes,
            "session_hits": self.hits,
            "session_misses": self.misses,
        }
