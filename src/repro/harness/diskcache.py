"""Persistent on-disk result cache for the experiment harness.

Re-running any figure — locally or in CI — should cost simulation time
only once.  Runs are deterministic functions of their :class:`RunSpec`
*and* of the simulator's code, so the cache key combines both:

* **spec key** — a hash of the spec's canonical JSON form,
* **code version** — a hash over every source file of the ``repro``
  package (plus the record schema version).  Any change to the
  simulator, GC, JIT, or harness invalidates every cached result at
  once; stale versions are swept by :meth:`DiskCache.clear` or simply
  ignored.

Layout: one JSON file per entry under ``<root>/<version>/<spec>.json``,
written atomically (tmp file + ``os.replace``), so concurrent writers —
parallel workers, two CI jobs sharing a cache volume — can never leave a
torn file behind.  A truncated or otherwise corrupt entry is treated as
a miss and deleted; the result is recomputed, never trusted.

Environment knobs:

* ``REPRO_CACHE_DIR`` — cache root (default ``results/.cache``),
* ``REPRO_DISK_CACHE=0`` — disable the disk layer entirely (the
  in-process memo still applies).
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
from dataclasses import asdict
from typing import Optional

from repro.harness.record import RunRecord, SCHEMA_VERSION
from repro.vm.snapshot import Snapshot, SnapshotError

#: Default cache root, relative to the working directory.
DEFAULT_ROOT = os.path.join("results", ".cache")

_CODE_VERSION: Optional[str] = None


def cache_enabled() -> bool:
    """Whether the disk layer is switched on (``REPRO_DISK_CACHE``)."""
    return os.environ.get("REPRO_DISK_CACHE", "1") != "0"


def cache_root() -> str:
    return os.environ.get("REPRO_CACHE_DIR", DEFAULT_ROOT)


def code_version() -> str:
    """Hash of the ``repro`` package sources + the record schema.

    Computed once per process; a one-line change anywhere in the
    simulator yields a different version, so cached results can never
    outlive the code that produced them.
    """
    global _CODE_VERSION
    if _CODE_VERSION is None:
        import repro

        digest = hashlib.sha256()
        digest.update(f"schema:{SCHEMA_VERSION}".encode())
        pkg_dir = os.path.dirname(os.path.abspath(repro.__file__))
        sources = []
        for dirpath, _dirnames, filenames in os.walk(pkg_dir):
            for name in filenames:
                if name.endswith(".py"):
                    path = os.path.join(dirpath, name)
                    sources.append((os.path.relpath(path, pkg_dir), path))
        for relpath, path in sorted(sources):
            digest.update(relpath.encode())
            with open(path, "rb") as fh:
                digest.update(fh.read())
        _CODE_VERSION = digest.hexdigest()[:16]
    return _CODE_VERSION


def spec_key(spec) -> str:
    """Stable hash of one RunSpec's canonical JSON form."""
    canonical = json.dumps(asdict(spec), sort_keys=True)
    return hashlib.sha256(canonical.encode()).hexdigest()[:24]


class DiskCache:
    """One directory of spec-keyed run records for one code version."""

    def __init__(self, root: Optional[str] = None,
                 version: Optional[str] = None):
        self.root = root or cache_root()
        self.version = version or code_version()
        #: Session counters (surfaced by ``cache stats`` and tests).
        #: Records and snapshots count separately so snapshot probes
        #: never perturb the record hit rate.
        self.hits = 0
        self.misses = 0
        self.snapshot_hits = 0
        self.snapshot_misses = 0

    def _entry_path(self, spec) -> str:
        return os.path.join(self.root, self.version, spec_key(spec) + ".json")

    # -- read/write ----------------------------------------------------------

    def get(self, spec) -> Optional[RunRecord]:
        """Load the cached record for ``spec``, or None.

        Any unreadable entry — truncated write, foreign schema, hand
        edit — is deleted and reported as a miss: the cache degrades to
        recomputation, never to wrong results.
        """
        path = self._entry_path(spec)
        try:
            with open(path, "r") as fh:
                doc = json.load(fh)
            record = RunRecord.from_json(doc["record"])
        except FileNotFoundError:
            self.misses += 1
            return None
        except (OSError, ValueError, KeyError, TypeError):
            self.misses += 1
            try:
                os.remove(path)
            except OSError:
                pass
            return None
        self.hits += 1
        return record

    def put(self, spec, record: RunRecord) -> None:
        """Store ``record`` atomically (tmp file + rename)."""
        path = self._entry_path(spec)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        doc = {"version": self.version, "spec": asdict(spec),
               "record": record.to_json()}
        tmp = f"{path}.tmp.{os.getpid()}"
        with open(tmp, "w") as fh:
            json.dump(doc, fh)
        os.replace(tmp, path)

    # -- snapshots -----------------------------------------------------------
    #
    # Snapshot entries checkpoint a run mid-flight so a later process
    # can simulate only the delta.  They are keyed by the *base* spec
    # (the runner strips ``until_cycles`` before calling in) plus the
    # captured cycle: ``<root>/<version>/<key>.snap.<cycle>.bin`` —
    # every ``until_cycles`` extension of the same configuration shares
    # one checkpoint family.

    def _snapshot_path(self, spec, cycle: int) -> str:
        return os.path.join(self.root, self.version,
                            f"{spec_key(spec)}.snap.{cycle}.bin")

    def snapshot_cycles(self, spec) -> "list[int]":
        """Checkpoint cycles available for ``spec``, ascending."""
        prefix = spec_key(spec) + ".snap."
        directory = os.path.join(self.root, self.version)
        cycles = []
        try:
            names = os.listdir(directory)
        except OSError:
            return cycles
        for name in names:
            if name.startswith(prefix) and name.endswith(".bin"):
                try:
                    cycles.append(int(name[len(prefix):-len(".bin")]))
                except ValueError:
                    continue
        cycles.sort()
        return cycles

    def put_snapshot(self, spec, snapshot: Snapshot) -> str:
        """Store one checkpoint atomically; returns its path."""
        path = self._snapshot_path(spec, snapshot.cycle)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        tmp = f"{path}.tmp.{os.getpid()}"
        with open(tmp, "wb") as fh:
            fh.write(snapshot.to_bytes())
        os.replace(tmp, path)
        return path

    def get_snapshot(self, spec, max_cycle: Optional[int] = None,
                     require_pure: bool = False) -> Optional[Snapshot]:
        """The latest checkpoint strictly before ``max_cycle`` (or the
        latest overall), or None.  Corrupt entries are deleted and
        treated as misses, exactly like records.  ``require_pure``
        skips snapshots whose VM carries live observers (the record
        cache must only resume those — see :attr:`Snapshot.pure`)."""
        candidates = [c for c in self.snapshot_cycles(spec)
                      if max_cycle is None or c < max_cycle]
        while candidates:
            cycle = candidates.pop()
            path = self._snapshot_path(spec, cycle)
            try:
                with open(path, "rb") as fh:
                    snapshot = Snapshot.from_bytes(fh.read())
            except FileNotFoundError:
                continue
            except (OSError, SnapshotError):
                try:
                    os.remove(path)
                except OSError:
                    pass
                continue
            if require_pure and not snapshot.pure:
                continue
            self.snapshot_hits += 1
            return snapshot
        self.snapshot_misses += 1
        return None

    # -- maintenance ---------------------------------------------------------

    def clear(self) -> int:
        """Drop every entry (all code versions); returns files removed."""
        removed = 0
        if os.path.isdir(self.root):
            for name in os.listdir(self.root):
                path = os.path.join(self.root, name)
                if os.path.isdir(path):
                    removed += sum(len(files) for _, _, files in os.walk(path))
                    shutil.rmtree(path, ignore_errors=True)
                else:
                    os.remove(path)
                    removed += 1
        return removed

    def _walk_entries(self):
        """Yield ``(path, kind, current, size, mtime)`` per cache file.

        ``kind`` is ``"record"`` (``*.json``) or ``"snapshot"``
        (``*.snap.<cycle>.bin``); anything else (tmp droppings) is
        skipped.
        """
        if not os.path.isdir(self.root):
            return
        for dirpath, _dirnames, filenames in os.walk(self.root):
            current = os.path.basename(dirpath) == self.version
            for name in filenames:
                if name.endswith(".json"):
                    kind = "record"
                elif name.endswith(".bin") and ".snap." in name:
                    kind = "snapshot"
                else:
                    continue
                path = os.path.join(dirpath, name)
                try:
                    st = os.stat(path)
                except OSError:
                    continue
                yield path, kind, current, st.st_size, st.st_mtime

    def stats(self) -> dict:
        """Entry counts and sizes, split by kind and by staleness."""
        current = stale = total_bytes = 0
        by_kind = {"record": {"entries": 0, "bytes": 0},
                   "snapshot": {"entries": 0, "bytes": 0}}
        for _path, kind, is_current, size, _mtime in self._walk_entries():
            total_bytes += size
            if is_current:
                current += 1
                by_kind[kind]["entries"] += 1
                by_kind[kind]["bytes"] += size
            else:
                stale += 1
        return {
            "root": self.root,
            "version": self.version,
            "entries": current,
            "stale_entries": stale,
            "bytes": total_bytes,
            "records": by_kind["record"],
            "snapshots": by_kind["snapshot"],
            "session_hits": self.hits,
            "session_misses": self.misses,
            "session_snapshot_hits": self.snapshot_hits,
            "session_snapshot_misses": self.snapshot_misses,
        }

    def prune(self, max_bytes: Optional[int] = None,
              dry_run: bool = False) -> dict:
        """Evict stale code versions, then trim to a byte budget.

        Every entry under a non-current version directory is removed
        unconditionally (results from other code can never be served
        again).  If ``max_bytes`` is given and the surviving entries
        still exceed it, current-version entries are evicted oldest-
        mtime-first — snapshots and records alike, since both are pure
        functions of (spec, code) and regenerate on demand.

        ``dry_run`` computes the same plan — identical counts and
        surviving byte total — without deleting anything; the planned
        removals are listed under ``"would_remove"``.
        """
        removed_stale = removed_current = 0
        would_remove = []
        survivors = []
        for path, _kind, is_current, size, mtime in self._walk_entries():
            if is_current:
                survivors.append((mtime, size, path))
            elif dry_run:
                would_remove.append(path)
                removed_stale += 1
            else:
                try:
                    os.remove(path)
                    removed_stale += 1
                except OSError:
                    pass
        # Sweep now-empty stale version directories.
        if not dry_run and os.path.isdir(self.root):
            for name in os.listdir(self.root):
                path = os.path.join(self.root, name)
                if os.path.isdir(path) and name != self.version \
                        and not os.listdir(path):
                    shutil.rmtree(path, ignore_errors=True)
        remaining = sum(size for _mtime, size, _path in survivors)
        if max_bytes is not None:
            survivors.sort()  # oldest first
            for mtime, size, path in survivors:
                if remaining <= max_bytes:
                    break
                if dry_run:
                    would_remove.append(path)
                else:
                    try:
                        os.remove(path)
                    except OSError:
                        continue
                removed_current += 1
                remaining -= size
        outcome = {
            "removed_stale": removed_stale,
            "removed_current": removed_current,
            "bytes": remaining,
        }
        if dry_run:
            outcome["would_remove"] = would_remove
        return outcome
