"""Aggregated run-health report: phases + findings -> verdict.

The health layer is a *pure observer* exactly like telemetry and the
lineage ledger: it reads the per-interval HPM vectors the controller
already produces and never charges cycles, never consumes randomness,
and never mutates simulator state.  Its output is a
:class:`HealthReport` — the segmented phase table from
:mod:`repro.health.phases`, the pathology findings from
:mod:`repro.health.detectors`, and an aggregate ok/warn/critical
verdict — which rides inside :class:`repro.harness.record.RunRecord`
(schema 5) and is exported as Prometheus gauges at VM shutdown.

Severity ordering is ``ok < warn < critical``; the report verdict is
the maximum severity over all findings.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

#: Version stamp for the embedded ``health`` document inside RunRecord.
HEALTH_SCHEMA_VERSION = 1

SEVERITY_OK = "ok"
SEVERITY_WARN = "warn"
SEVERITY_CRITICAL = "critical"

#: Numeric ranks used both for verdict aggregation and for the
#: Prometheus ``health.verdict`` gauge (0 ok / 1 warn / 2 critical).
SEVERITY_RANK = {SEVERITY_OK: 0, SEVERITY_WARN: 1, SEVERITY_CRITICAL: 2}


def worst_severity(severities: Sequence[str]) -> str:
    """Maximum severity over ``severities`` (``ok`` when empty)."""
    worst = SEVERITY_OK
    for sev in severities:
        if SEVERITY_RANK.get(sev, 0) > SEVERITY_RANK[worst]:
            worst = sev
    return worst


@dataclass
class Finding:
    """One pathology surfaced by a detector.

    ``evidence`` carries the raw numbers that triggered the detector;
    ``ledger_ids`` are the decision-ledger entry ids that justify it —
    ``repro doctor`` resolves each id back through the ledger and
    prints its justification chain, so every finding is auditable
    against the same append-only record that ``repro explain`` reads.
    """

    detector: str
    severity: str
    summary: str
    start_cycle: int
    end_cycle: int
    evidence: Dict[str, object] = field(default_factory=dict)
    ledger_ids: Tuple[int, ...] = ()
    remediation: str = ""

    def to_json(self) -> dict:
        return {
            "detector": self.detector,
            "severity": self.severity,
            "summary": self.summary,
            "start_cycle": self.start_cycle,
            "end_cycle": self.end_cycle,
            "evidence": dict(self.evidence),
            "ledger_ids": list(self.ledger_ids),
            "remediation": self.remediation,
        }

    @classmethod
    def from_json(cls, doc: dict) -> "Finding":
        return cls(
            detector=doc["detector"],
            severity=doc["severity"],
            summary=doc["summary"],
            start_cycle=doc["start_cycle"],
            end_cycle=doc["end_cycle"],
            evidence=dict(doc.get("evidence") or {}),
            ledger_ids=tuple(doc.get("ledger_ids") or ()),
            remediation=doc.get("remediation", ""),
        )


@dataclass
class PhaseRecord:
    """One segmented phase: a maximal run of similar interval vectors.

    ``centroid`` is the mean *raw* feature vector over the phase's
    intervals (miss rate, GC fraction, alloc rate, samples, recompiles)
    so the phase table can say what characterised the phase, not just
    where it was.  ``period_ids`` are the ledger ``period_close`` entry
    ids covered by the phase (empty when no ledger is attached) — the
    "ledger-linked" half of a phase boundary.
    """

    index: int
    start_period: int
    end_period: int
    start_cycle: int
    end_cycle: int
    intervals: int
    centroid: Dict[str, float] = field(default_factory=dict)
    period_ids: Tuple[int, ...] = ()

    def to_json(self) -> dict:
        return {
            "index": self.index,
            "start_period": self.start_period,
            "end_period": self.end_period,
            "start_cycle": self.start_cycle,
            "end_cycle": self.end_cycle,
            "intervals": self.intervals,
            "centroid": {k: round(v, 6) for k, v in self.centroid.items()},
            "period_ids": list(self.period_ids),
        }

    @classmethod
    def from_json(cls, doc: dict) -> "PhaseRecord":
        return cls(
            index=doc["index"],
            start_period=doc["start_period"],
            end_period=doc["end_period"],
            start_cycle=doc["start_cycle"],
            end_cycle=doc["end_cycle"],
            intervals=doc["intervals"],
            centroid=dict(doc.get("centroid") or {}),
            period_ids=tuple(doc.get("period_ids") or ()),
        )


@dataclass
class HealthReport:
    """Verdict + phase table + findings for one run."""

    verdict: str
    phases: List[PhaseRecord] = field(default_factory=list)
    findings: List[Finding] = field(default_factory=list)
    intervals: int = 0
    total_cycles: int = 0

    def to_json(self) -> dict:
        return {
            "schema": HEALTH_SCHEMA_VERSION,
            "verdict": self.verdict,
            "intervals": self.intervals,
            "total_cycles": self.total_cycles,
            "phases": [p.to_json() for p in self.phases],
            "findings": [f.to_json() for f in self.findings],
        }

    @classmethod
    def from_json(cls, doc: dict) -> "HealthReport":
        return cls(
            verdict=doc.get("verdict", SEVERITY_OK),
            phases=[PhaseRecord.from_json(p) for p in doc.get("phases") or []],
            findings=[Finding.from_json(f) for f in doc.get("findings") or []],
            intervals=doc.get("intervals", 0),
            total_cycles=doc.get("total_cycles", 0),
        )

    def findings_by_detector(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for f in self.findings:
            counts[f.detector] = counts.get(f.detector, 0) + 1
        return counts


def build_report(phases, findings, intervals: int,
                 total_cycles: int) -> HealthReport:
    """Assemble the report; verdict = worst finding severity."""
    return HealthReport(
        verdict=worst_severity([f.severity for f in findings]),
        phases=list(phases),
        findings=list(findings),
        intervals=intervals,
        total_cycles=total_cycles,
    )


# -- rendering --------------------------------------------------------------

def format_phase_table(report: HealthReport) -> str:
    """Plain-text phase table for ``repro doctor`` / ``timeline --phases``."""
    if not report.phases:
        return "phases: none segmented (run too short or monitoring off)"
    lines = ["phase  periods      cycles                miss    gcfrac  "
             "alloc/KC  samples"]
    for p in report.phases:
        c = p.centroid
        lines.append(
            "%-6d %-12s %-21s %-7s %-7s %-9s %s" % (
                p.index,
                "%d-%d" % (p.start_period, p.end_period),
                "%d-%d" % (p.start_cycle, p.end_cycle),
                "%.3f" % c.get("miss_rate", 0.0),
                "%.3f" % c.get("gc_fraction", 0.0),
                "%.2f" % (c.get("alloc_rate", 0.0) * 1000.0),
                "%.1f" % c.get("samples", 0.0),
            ))
    return "\n".join(lines)


def format_phase_overlay(report: HealthReport,
                         total_cycles: Optional[int] = None,
                         width: int = 72) -> str:
    """One-row phase lane aligned with the timeline Gantt columns.

    Each column shows the phase index (mod 10) owning that slice of the
    run, so phase boundaries line up visually with the per-category
    occupancy lanes from :func:`repro.telemetry.export.format_timeline`.
    """
    if not report.phases:
        return "phases: none segmented"
    end = total_cycles or report.total_cycles or report.phases[-1].end_cycle
    if end <= 0:
        return "phases: none segmented"
    row = []
    for col in range(width):
        cycle = int((col + 0.5) * end / width)
        mark = "."
        for p in report.phases:
            if p.start_cycle <= cycle <= p.end_cycle:
                mark = str(p.index % 10)
                break
        row.append(mark)
    label = "%-10s" % "phases"
    return "%s|%s| %d phase(s)" % (label, "".join(row), len(report.phases))


def format_findings(report: HealthReport) -> str:
    if not report.findings:
        return "findings: none"
    lines = []
    for i, f in enumerate(report.findings):
        lines.append("[%d] %-8s %-22s %s" % (
            i, f.severity.upper(), f.detector, f.summary))
        lines.append("    cycles %d-%d" % (f.start_cycle, f.end_cycle))
        if f.evidence:
            ev = ", ".join("%s=%s" % (k, _fmt_val(v))
                           for k, v in sorted(f.evidence.items()))
            lines.append("    evidence: %s" % ev)
        if f.ledger_ids:
            lines.append("    ledger ids: %s"
                         % ", ".join(str(x) for x in f.ledger_ids))
        if f.remediation:
            lines.append("    hint: %s" % f.remediation)
    return "\n".join(lines)


def _fmt_val(v) -> str:
    if isinstance(v, float):
        return "%.4g" % v
    return str(v)
