"""Online phase segmentation from per-interval HPM vectors.

Each measurement period the controller closes becomes one
:class:`Interval`: a small vector of hardware/runtime signals (L1D miss
rate, GC cycle fraction, allocation rate, samples received, methods
compiled) — exactly the per-interval stream the paper's monitoring
layer already produces for free.  :class:`PhaseTracker` segments that
stream into *phases* online with a change-point rule:

* every feature is normalized by a running per-dimension scale (the
  largest magnitude seen so far, so dimensionally incomparable signals
  — rates vs. counts — become comparable without a priori ranges);
* the tracker keeps a rolling centroid of the current phase and
  computes the normalized Euclidean distance of each new interval from
  it;
* a boundary is committed only after ``hysteresis`` *consecutive*
  intervals exceed ``threshold`` (single-interval spikes — a GC burst,
  one compilation storm — must not flap the segmentation).

Everything is plain deterministic arithmetic over observed values: no
randomness, no clock reads, no simulator mutation — the pure-observer
invariant the telemetry and lineage layers already obey.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.health.report import PhaseRecord

#: The features segmentation runs on, in canonical order.
FEATURES = ("miss_rate", "gc_fraction", "alloc_rate", "samples",
            "recompiles")

#: Normalized distance above which an interval counts against the
#: current phase (see :class:`PhaseTracker`).
DEFAULT_THRESHOLD = 0.30
#: Consecutive exceeding intervals required to commit a boundary.
DEFAULT_HYSTERESIS = 2
#: Intervals always absorbed into the first phase while scales settle.
WARMUP_INTERVALS = 3


@dataclass
class Interval:
    """One measurement period's observed vector (pure observation)."""

    index: int
    start_cycle: int
    end_cycle: int
    samples: int
    attributed: int
    miss_rate: float
    gc_fraction: float
    alloc_rate: float
    recompiles: int
    sampling_paused: bool = False
    #: Hottest fields this period: ((qualified_name, events), ...).
    top_fields: Tuple[Tuple[str, int], ...] = ()
    #: Ledger ids of the matching period_close / ranking_snapshot
    #: entries (-1 when no ledger is attached).
    ledger_period_id: int = -1
    ledger_ranking_id: int = -1

    @property
    def cycles(self) -> int:
        return self.end_cycle - self.start_cycle

    def features(self) -> Tuple[float, ...]:
        return (self.miss_rate, self.gc_fraction, self.alloc_rate,
                float(self.samples), float(self.recompiles))


class PhaseTracker:
    """Segments the interval stream into phases, online."""

    def __init__(self, threshold: float = DEFAULT_THRESHOLD,
                 hysteresis: int = DEFAULT_HYSTERESIS,
                 warmup: int = WARMUP_INTERVALS):
        self.threshold = threshold
        self.hysteresis = max(1, hysteresis)
        self.warmup = warmup
        self.phases: List[PhaseRecord] = []
        #: Per-dimension running scale (max magnitude observed).
        self._scales = [0.0] * len(FEATURES)
        #: Current phase accumulator.
        self._current: List[Interval] = []
        #: Intervals provisionally outside the current phase (the
        #: hysteresis buffer); committed as a new phase only once
        #: ``hysteresis`` of them arrive back to back.
        self._pending: List[Interval] = []
        self._seen = 0

    # -- distance ----------------------------------------------------------

    def _update_scales(self, feats: Tuple[float, ...]) -> None:
        for i, value in enumerate(feats):
            magnitude = abs(value)
            if magnitude > self._scales[i]:
                self._scales[i] = magnitude

    def _normalize(self, feats: Tuple[float, ...]) -> List[float]:
        return [feats[i] / self._scales[i] if self._scales[i] > 0.0 else 0.0
                for i in range(len(feats))]

    def _centroid_raw(self, intervals: List[Interval]) -> List[float]:
        n = len(intervals)
        acc = [0.0] * len(FEATURES)
        for iv in intervals:
            for i, value in enumerate(iv.features()):
                acc[i] += value
        return [value / n for value in acc]

    def distance(self, interval: Interval) -> float:
        """Normalized distance of ``interval`` from the phase centroid."""
        if not self._current:
            return 0.0
        centroid = self._normalize(tuple(self._centroid_raw(self._current)))
        point = self._normalize(interval.features())
        acc = 0.0
        for c, p in zip(centroid, point):
            acc += (p - c) ** 2
        return math.sqrt(acc / len(FEATURES))

    # -- segmentation ------------------------------------------------------

    def observe(self, interval: Interval) -> Optional[PhaseRecord]:
        """Feed one interval; returns the phase just *closed*, if any."""
        self._seen += 1
        self._update_scales(interval.features())
        if self._seen <= self.warmup or not self._current:
            self._current.append(interval)
            return None
        if self.distance(interval) <= self.threshold:
            # Interval belongs to the current phase; any pending
            # outliers were a transient — fold them back in.
            self._current.extend(self._pending)
            self._pending.clear()
            self._current.append(interval)
            return None
        self._pending.append(interval)
        if len(self._pending) < self.hysteresis:
            return None
        # Boundary committed: the pending run becomes the new phase.
        closed = self._close_current()
        self._current = list(self._pending)
        self._pending = []
        return closed

    def _close_current(self) -> PhaseRecord:
        intervals = self._current
        centroid = self._centroid_raw(intervals)
        record = PhaseRecord(
            index=len(self.phases),
            start_period=intervals[0].index,
            end_period=intervals[-1].index,
            start_cycle=intervals[0].start_cycle,
            end_cycle=intervals[-1].end_cycle,
            intervals=len(intervals),
            centroid=dict(zip(FEATURES, centroid)),
            period_ids=tuple(iv.ledger_period_id for iv in intervals
                             if iv.ledger_period_id >= 0),
        )
        self.phases.append(record)
        return record

    def finish(self) -> List[PhaseRecord]:
        """Close the open phase (folding any sub-hysteresis tail in)."""
        if self._pending:
            self._current.extend(self._pending)
            self._pending = []
        if self._current:
            self._close_current()
            self._current = []
        return self.phases
