"""Pathology detectors over the interval + feedback event streams.

Each detector watches the same two streams the health monitor fans
out — the per-period :class:`repro.health.phases.Interval` vectors and
the feedback engine's experiment events (begin / verdict / revert,
each carrying the decision-ledger entry id the feedback engine already
records) — and yields :class:`repro.health.report.Finding`s with a
severity, a cycle span, numeric evidence, the justifying ledger ids,
and a remediation hint.

Detectors are registered by name in :data:`DETECTOR_REGISTRY` so the
set is extensible (the arXiv 1906.12066 pattern: each inefficiency
class is its own PMU-driven detector); :func:`default_detectors`
instantiates the built-in five the ISSUE requires.

Purity: detectors only ever *read* interval values and event payloads.
They must not call :meth:`OnlineMonitor.hot_field` (it mutates the
monitor's hot-cache) — the non-mutating per-period ``field_counts``
snapshot inside each Interval carries the same information.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.health.phases import Interval
from repro.health.report import (
    Finding,
    SEVERITY_CRITICAL,
    SEVERITY_WARN,
)


@dataclass
class ExperimentEvent:
    """One feedback-engine event, tagged with its ledger entry id."""

    kind: str          # "begin" | "verdict" | "revert"
    name: str
    cycle: int
    ledger_id: int = -1
    field: str = ""
    period: int = -1
    rate: float = 0.0
    baseline: float = 0.0
    threshold: float = 0.0
    regressed: bool = False
    streak: int = 0


class Detector:
    """Base class: override the hooks you need; collect findings."""

    name = "detector"

    def on_interval(self, interval: Interval) -> None:
        pass

    def on_event(self, event: ExperimentEvent) -> None:
        pass

    def finalize(self, intervals: List[Interval],
                 total_cycles: int) -> List[Finding]:
        """Called once at end of run; returns this detector's findings."""
        return []


#: name -> zero-argument factory.
DETECTOR_REGISTRY: Dict[str, Callable[[], "Detector"]] = {}


def register_detector(factory: Callable[[], "Detector"]):
    """Class decorator: add ``factory`` under its ``name`` attribute."""
    DETECTOR_REGISTRY[factory.name] = factory
    return factory


def default_detectors() -> List[Detector]:
    """Fresh instances of every registered detector, in registry order."""
    return [factory() for factory in DETECTOR_REGISTRY.values()]


# -- concrete detectors -----------------------------------------------------


@register_detector
class RevertStormDetector(Detector):
    """>= K experiment reverts within a window of W intervals.

    A single revert is the feedback engine working as designed
    (Figure 8); a *storm* of them means the controller keeps applying
    placements the workload immediately rejects — guidance is chasing
    noise or the workload shifted under it.
    """

    name = "revert_storm"

    def __init__(self, min_reverts: int = 2, window_intervals: int = 40):
        self.min_reverts = min_reverts
        self.window = window_intervals
        self._interval_index = -1
        #: (interval index at revert, cycle, ledger id, experiment name)
        self._reverts: List[tuple] = []

    def on_interval(self, interval: Interval) -> None:
        self._interval_index = interval.index

    def on_event(self, event: ExperimentEvent) -> None:
        if event.kind == "revert":
            self._reverts.append((max(0, self._interval_index + 1),
                                  event.cycle, event.ledger_id, event.name))

    def finalize(self, intervals: List[Interval],
                 total_cycles: int) -> List[Finding]:
        best: Optional[List[tuple]] = None
        for i in range(len(self._reverts)):
            cluster = [r for r in self._reverts
                       if 0 <= r[0] - self._reverts[i][0] < self.window]
            if len(cluster) >= self.min_reverts \
                    and (best is None or len(cluster) > len(best)):
                best = cluster
        if best is None:
            return []
        return [Finding(
            detector=self.name,
            severity=SEVERITY_CRITICAL,
            summary="%d experiment reverts within %d intervals" % (
                len(best), self.window),
            start_cycle=best[0][1],
            end_cycle=best[-1][1],
            evidence={"reverts": len(best), "window_intervals": self.window,
                      "experiments": sorted({r[3] for r in best})},
            ledger_ids=tuple(r[2] for r in best if r[2] >= 0),
            remediation="raise revert_patience or min_samples_for_guidance "
                        "so placements are only tried on stable evidence",
        )]


@register_detector
class RankingOscillationDetector(Detector):
    """The top-ranked field churns faster than guidance can act on it.

    Co-allocation reads the ranking at promotion time; if the #1 field
    flips every period the policy keeps optimizing for a pattern that
    is already gone (the paper's motivation for moving-average
    smoothing, section 5.2).
    """

    name = "ranking_oscillation"

    def __init__(self, window: int = 12, churn_threshold: float = 0.5):
        self.window = window
        self.churn_threshold = churn_threshold
        #: (interval, top field qualified name, ranking ledger id)
        self._tops: List[tuple] = []

    def on_interval(self, interval: Interval) -> None:
        if interval.top_fields and interval.samples > 0:
            self._tops.append((interval, interval.top_fields[0][0],
                               interval.ledger_ranking_id))

    def finalize(self, intervals: List[Interval],
                 total_cycles: int) -> List[Finding]:
        n = len(self._tops)
        if n < self.window:
            return []
        worst_churn, worst_at = 0.0, 0
        for i in range(n - self.window + 1):
            names = [t[1] for t in self._tops[i:i + self.window]]
            changes = sum(1 for a, b in zip(names, names[1:]) if a != b)
            churn = changes / (self.window - 1)
            if churn > worst_churn:
                worst_churn, worst_at = churn, i
        if worst_churn < self.churn_threshold:
            return []
        span = self._tops[worst_at:worst_at + self.window]
        return [Finding(
            detector=self.name,
            severity=SEVERITY_WARN,
            summary="top-field churn %.2f over %d ranked intervals" % (
                worst_churn, self.window),
            start_cycle=span[0][0].start_cycle,
            end_cycle=span[-1][0].end_cycle,
            evidence={"churn": round(worst_churn, 3),
                      "window_intervals": self.window,
                      "distinct_tops": len({t[1] for t in span})},
            ledger_ids=tuple(t[2] for t in span if t[2] >= 0),
            remediation="widen moving_average_window or raise the sampling "
                        "interval so the ranking integrates more evidence",
        )]


@register_detector
class SamplingStarvationDetector(Detector):
    """Most intervals carry too few PEBS samples to rank anything.

    The paper's auto mode targets a fixed samples/second; when the
    observed stream stays far below that, hot-field guidance is
    statistically meaningless and co-allocation never engages.
    """

    name = "sampling_starvation"

    def __init__(self, min_samples: int = 4, min_fraction: float = 0.5,
                 min_intervals: int = 6):
        self.min_samples = min_samples
        self.min_fraction = min_fraction
        self.min_intervals = min_intervals

    def finalize(self, intervals: List[Interval],
                 total_cycles: int) -> List[Finding]:
        considered = [iv for iv in intervals if not iv.sampling_paused]
        if len(considered) < self.min_intervals:
            return []
        starved = [iv for iv in considered
                   if iv.samples < self.min_samples]
        fraction = len(starved) / len(considered)
        if fraction < self.min_fraction:
            return []
        return [Finding(
            detector=self.name,
            severity=SEVERITY_WARN,
            summary="%d of %d active intervals below %d samples" % (
                len(starved), len(considered), self.min_samples),
            start_cycle=starved[0].start_cycle,
            end_cycle=starved[-1].end_cycle,
            evidence={"starved_intervals": len(starved),
                      "active_intervals": len(considered),
                      "fraction": round(fraction, 3),
                      "min_samples": self.min_samples},
            ledger_ids=tuple(iv.ledger_period_id for iv in starved[:8]
                             if iv.ledger_period_id >= 0),
            remediation="lower the sampling interval (or use auto mode) so "
                        "each period sees enough PEBS samples to rank",
        )]


@register_detector
class CacheThrashDetector(Detector):
    """A sustained run at the miss-rate ceiling with no winning fix.

    The interesting case for the paper's online loop: misses stay
    pinned at their peak for many consecutive periods while no
    placement experiment survives — the system observed the thrash but
    produced nothing that helped.
    """

    name = "cache_thrash"

    def __init__(self, ceiling_fraction: float = 0.9,
                 rate_floor: float = 0.05, min_run: int = 8):
        self.ceiling_fraction = ceiling_fraction
        self.rate_floor = rate_floor
        self.min_run = min_run
        self._wins = 0       # experiments begun and never reverted
        self._begun = 0
        self._reverted = 0

    def on_event(self, event: ExperimentEvent) -> None:
        if event.kind == "begin":
            self._begun += 1
        elif event.kind == "revert":
            self._reverted += 1

    def finalize(self, intervals: List[Interval],
                 total_cycles: int) -> List[Finding]:
        if not intervals:
            return []
        peak = max(iv.miss_rate for iv in intervals)
        ceiling = max(self.rate_floor, self.ceiling_fraction * peak)
        if peak < self.rate_floor:
            return []
        best_run: List[Interval] = []
        run: List[Interval] = []
        for iv in intervals:
            if iv.miss_rate >= ceiling:
                run.append(iv)
                if len(run) > len(best_run):
                    best_run = list(run)
            else:
                run = []
        if len(best_run) < self.min_run:
            return []
        winning = self._begun - self._reverted
        if winning > 0:
            return []
        severity = SEVERITY_CRITICAL if self._begun else SEVERITY_WARN
        mean_rate = sum(iv.miss_rate for iv in best_run) / len(best_run)
        return [Finding(
            detector=self.name,
            severity=severity,
            summary="miss rate pinned at ceiling for %d intervals "
                    "with no winning experiment" % len(best_run),
            start_cycle=best_run[0].start_cycle,
            end_cycle=best_run[-1].end_cycle,
            evidence={"intervals": len(best_run),
                      "mean_miss_rate": round(mean_rate, 4),
                      "ceiling": round(ceiling, 4),
                      "experiments_begun": self._begun,
                      "experiments_reverted": self._reverted},
            ledger_ids=tuple(iv.ledger_period_id for iv in best_run[:8]
                             if iv.ledger_period_id >= 0),
            remediation="the hot access pattern resists the current "
                        "placement policy; try a different sampled event "
                        "(L2_MISS/DTLB_MISS) or a larger co-allocation cell",
        )]


@register_detector
class PlacementRegressionDetector(Detector):
    """A committed (never-reverted) experiment ended worse than baseline.

    The revert heuristic needs ``revert_patience`` *consecutive* bad
    periods; a regression that oscillates under that streak sails
    through and the placement is silently kept.  This detector does the
    one-shot end-of-run comparison the online loop skips: post-commit
    rate vs. the pre-experiment baseline.
    """

    name = "placement_regression"

    def __init__(self, margin: float = 0.10):
        self.margin = margin
        #: name -> {begin event, last verdict event, reverted}
        self._experiments: Dict[str, dict] = {}

    def on_event(self, event: ExperimentEvent) -> None:
        if event.kind == "begin":
            self._experiments[event.name] = {
                "begin": event, "last": None, "reverted": False}
        else:
            state = self._experiments.get(event.name)
            if state is None:
                return
            if event.kind == "verdict":
                state["last"] = event
            elif event.kind == "revert":
                state["reverted"] = True

    def finalize(self, intervals: List[Interval],
                 total_cycles: int) -> List[Finding]:
        findings = []
        for name, state in self._experiments.items():
            if state["reverted"] or state["last"] is None:
                continue
            begin, last = state["begin"], state["last"]
            if begin.baseline <= 0:
                continue
            if last.rate <= begin.baseline * (1.0 + self.margin):
                continue
            ledger_ids = tuple(i for i in (begin.ledger_id, last.ledger_id)
                               if i >= 0)
            findings.append(Finding(
                detector=self.name,
                severity=SEVERITY_WARN,
                summary="experiment %r kept but ended %.0f%% over its "
                        "baseline" % (
                            name,
                            100.0 * (last.rate / begin.baseline - 1.0)),
                start_cycle=begin.cycle,
                end_cycle=last.cycle,
                evidence={"experiment": name, "field": begin.field,
                          "baseline_rate": round(begin.baseline, 4),
                          "final_rate": round(last.rate, 4),
                          "margin": self.margin},
                ledger_ids=ledger_ids,
                remediation="lower revert_threshold or revert_patience so "
                            "oscillating regressions still trip the revert",
            ))
        return findings
