"""Run-health observatory: the third pure observer.

:class:`HealthMonitor` rides on :class:`repro.core.config.SystemConfig`
exactly like telemetry and the lineage ledger: attach one to
``config.health`` and the VM feeds it the per-period interval stream
(via the perfmon interval tap) and the feedback engine's experiment
events.  It never charges cycles, never consumes randomness, and never
mutates simulator state — runs with health on and off are bit-identical
in cycles, instructions, counters, PEBS samples, the revert log, and
lineage entry ids (enforced by tests and the ``health_overhead`` bench
gate).

At end of run :meth:`HealthMonitor.report` produces the aggregated
:class:`repro.health.report.HealthReport` — online phase segmentation
plus pathology findings — which ``RunRecord`` embeds (schema 5),
``repro doctor`` prints, and the metrics registry exports as Prometheus
gauges.

Like ``NULL_TELEMETRY`` / ``NULL_LEDGER``, the shared
:data:`NULL_HEALTH` instance makes every hook a no-op when health is
not requested.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.health.detectors import (
    DETECTOR_REGISTRY,
    Detector,
    ExperimentEvent,
    default_detectors,
)
from repro.health.phases import Interval, PhaseTracker
from repro.health.report import (
    HEALTH_SCHEMA_VERSION,
    Finding,
    HealthReport,
    PhaseRecord,
    SEVERITY_RANK,
    build_report,
)

__all__ = [
    "HEALTH_SCHEMA_VERSION",
    "DETECTOR_REGISTRY",
    "Detector",
    "ExperimentEvent",
    "Finding",
    "HealthMonitor",
    "HealthReport",
    "Interval",
    "NULL_HEALTH",
    "NullHealthMonitor",
    "PhaseRecord",
    "PhaseTracker",
    "default_detectors",
]


def _zero_clock() -> int:
    """Default clock before a VM binds its cycle counter (picklable)."""
    return 0


class HealthMonitor:
    """Collects intervals + experiment events; segments and diagnoses."""

    enabled = True

    def __init__(self, tracker: Optional[PhaseTracker] = None,
                 detectors: Optional[List[Detector]] = None):
        self.tracker = tracker or PhaseTracker()
        self.detectors = (detectors if detectors is not None
                          else default_detectors())
        self.intervals: List[Interval] = []
        self._clock: Callable[[], int] = _zero_clock
        self._telemetry = None
        self._report: Optional[HealthReport] = None

    # -- VM wiring ---------------------------------------------------------

    def bind_clock(self, clock: Callable[[], int]) -> None:
        """The VM stamps experiment events with its cycle counter."""
        self._clock = clock

    def bind_telemetry(self, telemetry) -> None:
        """Phase boundaries are mirrored as spans when tracing is on."""
        self._telemetry = telemetry

    # -- interval stream ---------------------------------------------------

    def on_interval(self, interval: Interval) -> None:
        self.intervals.append(interval)
        for detector in self.detectors:
            detector.on_interval(interval)
        closed = self.tracker.observe(interval)
        if closed is not None:
            self._emit_phase(closed)

    # -- feedback events ---------------------------------------------------

    def on_experiment_begin(self, name: str, field: str, baseline: float,
                            started_period: int, ledger_id: int) -> None:
        self._fan_out(ExperimentEvent(
            kind="begin", name=name, cycle=self._clock(),
            ledger_id=ledger_id, field=field, baseline=baseline,
            period=started_period))

    def on_experiment_verdict(self, name: str, rate: float, threshold: float,
                              regressed: bool, streak: int,
                              ledger_id: int) -> None:
        self._fan_out(ExperimentEvent(
            kind="verdict", name=name, cycle=self._clock(),
            ledger_id=ledger_id, rate=rate, threshold=threshold,
            regressed=regressed, streak=streak))

    def on_experiment_revert(self, name: str, field: str, period: int,
                             rate: float, baseline: float,
                             ledger_id: int) -> None:
        self._fan_out(ExperimentEvent(
            kind="revert", name=name, cycle=self._clock(),
            ledger_id=ledger_id, field=field, period=period, rate=rate,
            baseline=baseline))

    def _fan_out(self, event: ExperimentEvent) -> None:
        for detector in self.detectors:
            detector.on_event(event)

    # -- phase telemetry ---------------------------------------------------

    def _emit_phase(self, phase: PhaseRecord) -> None:
        if self._telemetry is None or not self._telemetry.enabled:
            return
        tracer = self._telemetry.tracer
        tracer.complete("health.phase", cat="health",
                        ts=phase.start_cycle,
                        dur=max(0, phase.end_cycle - phase.start_cycle),
                        phase=phase.index, intervals=phase.intervals)
        tracer.instant("health.phase_change", cat="health",
                       phase=phase.index + 1,
                       after_period=phase.end_period)

    # -- report ------------------------------------------------------------

    def report(self, total_cycles: Optional[int] = None) -> HealthReport:
        """Finalize (idempotent) and return the aggregated report."""
        if self._report is not None:
            return self._report
        open_phases = len(self.tracker.phases)
        phases = self.tracker.finish()
        for phase in phases[open_phases:]:
            self._emit_phase(phase)
        if total_cycles is None:
            total_cycles = (self.intervals[-1].end_cycle
                            if self.intervals else self._clock())
        findings: List[Finding] = []
        for detector in self.detectors:
            findings.extend(detector.finalize(self.intervals, total_cycles))
        findings.sort(key=lambda f: (-SEVERITY_RANK.get(f.severity, 0),
                                     f.start_cycle, f.detector))
        self._report = build_report(phases, findings, len(self.intervals),
                                    total_cycles)
        return self._report

    def publish_metrics(self, metrics) -> None:
        """Export the report as Prometheus gauges (no-op when metrics off)."""
        if not metrics.enabled:
            return
        report = self.report()
        metrics.gauge(
            "health.verdict",
            "aggregate run-health verdict (0 ok / 1 warn / 2 critical)",
        ).set(SEVERITY_RANK.get(report.verdict, 0))
        metrics.gauge("health.phases",
                      "phases segmented from the interval stream",
                      ).set(len(report.phases))
        metrics.gauge("health.intervals",
                      "measurement intervals observed").set(report.intervals)
        findings = metrics.gauge("health.findings",
                                 "pathology findings, by detector")
        for name in DETECTOR_REGISTRY:
            findings.labels(name).set(0)
        for name, count in report.findings_by_detector().items():
            findings.labels(name).set(count)


class NullHealthMonitor(HealthMonitor):
    """Health monitor that observes nothing; every hook is a no-op."""

    enabled = False

    def on_interval(self, interval: Interval) -> None:
        pass

    def on_experiment_begin(self, *args, **kwargs) -> None:
        pass

    def on_experiment_verdict(self, *args, **kwargs) -> None:
        pass

    def on_experiment_revert(self, *args, **kwargs) -> None:
        pass

    def bind_clock(self, clock: Callable[[], int]) -> None:
        pass

    def bind_telemetry(self, telemetry) -> None:
        pass

    def publish_metrics(self, metrics) -> None:
        pass


#: Shared no-op instance (the default when ``config.health`` is unset).
NULL_HEALTH = NullHealthMonitor()
