"""Stdlib-only HTTP/JSON API over the fleet scheduler.

The daemon speaks plain HTTP/1.1 on asyncio streams — no web
framework, one request per connection (``Connection: close``), which
keeps the parser ~50 lines and the failure modes obvious.  Endpoints:

========================  ==================================================
``POST /jobs``            submit ``{"specs": [...], "leg_cycles": N?}``
``GET /jobs``             all jobs, newest last (summary rows)
``GET /jobs/<id>``        one job with per-spec states; ``?wait=1``
                          long-polls until the job is terminal
``GET /records/<key>``    cached record for a spec key (cache envelope)
``GET /diff?a=&b=``       structured diff of two spec keys' records
``GET /events``           live stream — SSE by default,
                          ``?format=jsonl`` for newline-delimited JSON,
                          ``?backlog=0`` to skip replaying history
``GET /metrics``          Prometheus text exposition (fleet + engine)
``GET /healthz``          liveness probe
``POST /shutdown``        drain and exit (same path as SIGTERM)
========================  ==================================================

:func:`serve` is the blocking entry point behind ``repro serve``; it
installs SIGTERM/SIGINT handlers for a graceful drain (refuse new
jobs, finish accepted ones, announce ``shutdown`` on the bus, exit).
:class:`BackgroundFleet` runs the same server on a daemon thread for
in-process tests and ad-hoc tooling.
"""

from __future__ import annotations

import asyncio
import json
import signal
import threading
import urllib.parse
from typing import Optional, Tuple

from repro.analysis.diff import DEFAULT_THRESHOLD, diff_docs
from repro.fleet.scheduler import FleetError, FleetScheduler, FleetUnavailable
from repro.harness import runner
from repro.harness.diskcache import DiskCache
from repro.telemetry.export import prometheus_text

DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 8077

#: Largest request body the daemon will read (1 MiB of spec JSON).
MAX_BODY = 1 << 20

_REASONS = {200: "OK", 400: "Bad Request", 404: "Not Found",
            405: "Method Not Allowed", 413: "Payload Too Large",
            500: "Internal Server Error", 503: "Service Unavailable"}


class _HttpError(Exception):
    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status
        self.message = message


async def _read_request(reader: asyncio.StreamReader
                        ) -> Tuple[str, str, dict, bytes]:
    """Parse one HTTP/1.1 request: (method, target, headers, body)."""
    try:
        line = await asyncio.wait_for(reader.readline(), timeout=10)
    except asyncio.TimeoutError:
        raise _HttpError(400, "request line timeout")
    if not line:
        raise ConnectionError("client closed")
    parts = line.decode("latin-1").split()
    if len(parts) != 3:
        raise _HttpError(400, "malformed request line")
    method, target, _version = parts
    headers = {}
    while True:
        try:
            raw = await asyncio.wait_for(reader.readline(), timeout=10)
        except asyncio.TimeoutError:
            raise _HttpError(400, "header timeout")
        if raw in (b"\r\n", b"\n", b""):
            break
        name, _, value = raw.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    body = b""
    length = int(headers.get("content-length", 0) or 0)
    if length > MAX_BODY:
        raise _HttpError(413, f"body exceeds {MAX_BODY} bytes")
    if length:
        body = await reader.readexactly(length)
    return method, target, headers, body


def _response(status: int, body: bytes,
              content_type: str = "application/json") -> bytes:
    head = (f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: close\r\n\r\n")
    return head.encode("latin-1") + body


def _json_response(status: int, doc: object) -> bytes:
    return _response(status, (json.dumps(doc, sort_keys=True) + "\n")
                     .encode("utf-8"))


class FleetServer:
    """One asyncio HTTP server bound to one :class:`FleetScheduler`."""

    def __init__(self, scheduler: FleetScheduler,
                 host: str = DEFAULT_HOST, port: int = DEFAULT_PORT):
        self.scheduler = scheduler
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None
        self._shutdown = asyncio.Event()
        self.loop: Optional[asyncio.AbstractEventLoop] = None

    async def start(self) -> None:
        self.loop = asyncio.get_running_loop()
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port)
        # Resolve port 0 to the real ephemeral port.
        self.port = self._server.sockets[0].getsockname()[1]

    @property
    def base_url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def request_shutdown(self) -> None:
        """Signal-handler-safe: ask :func:`serve_forever` to drain."""
        self._shutdown.set()

    async def serve_forever(self) -> None:
        """Serve until :meth:`request_shutdown`, then drain and close."""
        await self._shutdown.wait()
        await self.shutdown()

    async def shutdown(self) -> None:
        await self.scheduler.drain()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        self._shutdown.set()

    # -- request handling ----------------------------------------------------

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        try:
            try:
                method, target, _headers, body = await _read_request(reader)
            except _HttpError as exc:
                writer.write(_json_response(exc.status,
                                            {"error": exc.message}))
                return
            except (ConnectionError, asyncio.IncompleteReadError):
                return
            url = urllib.parse.urlsplit(target)
            query = dict(urllib.parse.parse_qsl(url.query))
            try:
                await self._route(method, url.path, query, body, writer)
            except _HttpError as exc:
                writer.write(_json_response(exc.status,
                                            {"error": exc.message}))
            except FleetError as exc:
                writer.write(_json_response(400, {"error": str(exc)}))
            except FleetUnavailable as exc:
                writer.write(_json_response(503, {"error": str(exc)}))
            except Exception as exc:  # pragma: no cover - defensive
                writer.write(_json_response(
                    500, {"error": f"{type(exc).__name__}: {exc}"}))
        finally:
            try:
                await writer.drain()
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _route(self, method: str, path: str, query: dict,
                     body: bytes, writer: asyncio.StreamWriter) -> None:
        sched = self.scheduler
        if path == "/healthz":
            writer.write(_json_response(200, {
                "ok": True, "draining": sched.draining,
                "jobs": len(sched.jobs_json())}))
            return
        if path == "/metrics":
            if method != "GET":
                raise _HttpError(405, "GET only")
            sched.refresh_gauges()
            text = prometheus_text(sched.metrics)
            writer.write(_response(
                200, text.encode("utf-8"),
                content_type="text/plain; version=0.0.4; charset=utf-8"))
            return
        if path == "/events":
            if method != "GET":
                raise _HttpError(405, "GET only")
            await self._stream_events(query, writer)
            return
        if path == "/jobs" and method == "POST":
            doc = _parse_json_body(body)
            specs = sched.parse_specs(doc.get("specs"))
            job = sched.submit(specs, leg_cycles=doc.get("leg_cycles"))
            writer.write(_json_response(200, sched.job_json(job)))
            return
        if path == "/jobs" and method == "GET":
            writer.write(_json_response(200, {"jobs": sched.jobs_json()}))
            return
        if path.startswith("/jobs/") and method == "GET":
            job = sched.get_job(path[len("/jobs/"):])
            if job is None:
                raise _HttpError(404, "no such job")
            if query.get("wait") in ("1", "true"):
                await job.done_event.wait()
            writer.write(_json_response(200, sched.job_json(job)))
            return
        if path.startswith("/records/") and method == "GET":
            doc = sched.record_json(path[len("/records/"):])
            if doc is None:
                raise _HttpError(404, "no record for that spec key")
            writer.write(_json_response(200, doc))
            return
        if path == "/diff" and method == "GET":
            a_key, b_key = query.get("a"), query.get("b")
            if not a_key or not b_key:
                raise _HttpError(400, "need ?a=<spec_key>&b=<spec_key>")
            docs = []
            for key in (a_key, b_key):
                doc = sched.record_json(key)
                if doc is None:
                    raise _HttpError(404, f"no record for spec key {key}")
                docs.append(doc)
            try:
                threshold = float(query.get("threshold",
                                            DEFAULT_THRESHOLD))
            except ValueError:
                raise _HttpError(400, "threshold must be a float")
            diff = diff_docs(docs[0], docs[1], threshold=threshold)
            writer.write(_json_response(200, {
                "a": a_key, "b": b_key, "diff": diff.to_json()}))
            return
        if path == "/shutdown" and method == "POST":
            writer.write(_json_response(200, {"draining": True}))
            self.request_shutdown()
            return
        raise _HttpError(404, f"no route for {method} {path}")

    async def _stream_events(self, query: dict,
                             writer: asyncio.StreamWriter) -> None:
        """Tail the bus: SSE by default, JSONL with ``?format=jsonl``.

        The stream ends when the daemon announces ``shutdown`` on the
        bus or the client disconnects; each write is drained so a slow
        consumer backpressures its own queue, not the bus.
        """
        jsonl = query.get("format") == "jsonl"
        backlog = query.get("backlog") not in ("0", "false")
        content_type = ("application/x-ndjson" if jsonl
                        else "text/event-stream")
        writer.write((f"HTTP/1.1 200 OK\r\n"
                      f"Content-Type: {content_type}\r\n"
                      f"Cache-Control: no-store\r\n"
                      f"Connection: close\r\n\r\n").encode("latin-1"))
        queue = self.scheduler.bus.subscribe(backlog=backlog)
        try:
            while True:
                doc = await queue.get()
                line = json.dumps(doc, sort_keys=True)
                if jsonl:
                    writer.write((line + "\n").encode("utf-8"))
                else:
                    writer.write(f"data: {line}\n\n".encode("utf-8"))
                await writer.drain()
                if doc.get("type") == "fleet" \
                        and doc.get("kind") == "shutdown":
                    break
        except (ConnectionError, OSError):
            pass
        finally:
            self.scheduler.bus.unsubscribe(queue)


def _parse_json_body(body: bytes) -> dict:
    if not body:
        raise _HttpError(400, "empty request body")
    try:
        doc = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise _HttpError(400, f"invalid JSON body: {exc}")
    if not isinstance(doc, dict):
        raise _HttpError(400, "request body must be a JSON object")
    return doc


class _EventLogSink:
    """Server-side tee of every bus event into a JSONL file.

    ``repro serve --events-log`` uses this so CI can upload the whole
    fleet's event stream as an artifact without holding a socket open.
    """

    def __init__(self, scheduler: FleetScheduler, path: str):
        self.fh = open(path, "w")
        original = scheduler.publish

        def tee(doc: dict) -> None:
            original(doc)
            self.fh.write(json.dumps(doc, sort_keys=True) + "\n")
            self.fh.flush()

        scheduler.publish = tee  # type: ignore[method-assign]

    def close(self) -> None:
        self.fh.close()


async def _serve_async(host: str, port: int, jobs: Optional[int],
                       events_log: Optional[str],
                       ready: Optional[threading.Event] = None,
                       server_box: Optional[list] = None,
                       install_signals: bool = True) -> None:
    scheduler = FleetScheduler(jobs=jobs)
    log_sink = (_EventLogSink(scheduler, events_log)
                if events_log else None)
    server = FleetServer(scheduler, host, port)
    await server.start()
    if server_box is not None:
        server_box.append(server)
    if install_signals:
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(sig, server.request_shutdown)
            except (NotImplementedError, RuntimeError):
                pass  # non-main thread or platform without signals
        print(f"repro fleet: serving on {server.base_url} "
              f"(jobs={scheduler.jobs})", flush=True)
    if ready is not None:
        ready.set()
    try:
        await server.serve_forever()
    finally:
        if log_sink is not None:
            log_sink.close()


def serve(host: str = DEFAULT_HOST, port: int = DEFAULT_PORT,
          jobs: Optional[int] = None, cache_dir: Optional[str] = None,
          events_log: Optional[str] = None) -> int:
    """Blocking entry point behind ``repro serve``.

    Runs until SIGTERM/SIGINT (or ``POST /shutdown``), then drains:
    new jobs are refused, accepted ones finish, the bus announces
    ``shutdown`` to every streaming client, and the server exits 0.
    """
    if cache_dir:
        runner.set_disk_cache(DiskCache(root=cache_dir))
    asyncio.run(_serve_async(host, port, jobs, events_log))
    print("repro fleet: drained, bye", flush=True)
    return 0


class BackgroundFleet:
    """A fleet daemon on a background thread (tests and tooling).

    ::

        with BackgroundFleet() as fleet:
            client = FleetClient(fleet.base_url)
            ...

    The context exit drains the scheduler exactly like SIGTERM would.
    """

    def __init__(self, jobs: Optional[int] = None, host: str = DEFAULT_HOST,
                 port: int = 0, events_log: Optional[str] = None):
        self._ready = threading.Event()
        self._box: list = []
        self._thread = threading.Thread(
            target=self._run, args=(host, port, jobs, events_log),
            name="fleet-server", daemon=True)
        self._thread.start()
        if not self._ready.wait(timeout=30):
            raise RuntimeError("fleet server failed to start")
        self.server: FleetServer = self._box[0]

    def _run(self, host: str, port: int, jobs: Optional[int],
             events_log: Optional[str]) -> None:
        asyncio.run(_serve_async(host, port, jobs, events_log,
                                 ready=self._ready, server_box=self._box,
                                 install_signals=False))

    @property
    def base_url(self) -> str:
        return self.server.base_url

    @property
    def port(self) -> int:
        return self.server.port

    def stop(self, timeout: float = 60) -> None:
        if not self._thread.is_alive():
            return
        # request_shutdown sets an asyncio.Event, which is loop-affine;
        # hop onto the server's loop from this foreign thread.
        try:
            self.server.loop.call_soon_threadsafe(
                self.server.request_shutdown)
        except RuntimeError:  # loop already closed: nothing to stop
            pass
        self._thread.join(timeout=timeout)
        if self._thread.is_alive():  # pragma: no cover - defensive
            raise RuntimeError("fleet server did not drain in time")

    def __enter__(self) -> "BackgroundFleet":
        return self

    def __exit__(self, *exc) -> None:
        self.stop()
