"""Asyncio job queue over the experiment engine, with in-flight dedup.

One :class:`FleetScheduler` owns everything a daemon needs to serve
simulation jobs at scale:

* **Job queue** — a submitted batch becomes one :class:`Job`; batches
  are admitted to the engine one at a time (``max_concurrent_batches``
  raises that), so the engine's own process pool keeps every core busy
  within a batch while further batches wait with a real, observable
  queue depth.
* **In-flight dedup** — every spec key ever seen maps to one
  :class:`SpecEntry`.  A batch submitting a key that is already queued
  or running *coalesces*: it waits for the owning batch's simulation
  instead of launching its own, so concurrent submitters of identical
  specs share exactly one simulation.  Completed entries are served
  from the runner's record cache (memo + disk), so the dedup layer is
  simply the in-flight slice of the cache.
* **Event bus** — engine :class:`~repro.harness.engine.JobEvent`\\ s
  (tagged with their batch id) plus fleet-level job lifecycle events
  are multiplexed onto one stream that any number of subscribers
  (``GET /events`` connections) can tail live.
* **Fleet metrics** — queue depth, in-flight specs, cache hit/miss,
  coalesced submissions, simulations launched, per-benchmark wall-time
  histograms — rendered by ``GET /metrics`` via the same Prometheus
  exposition the single-run harness uses.

The scheduler is loop-affine: every public method must run on the
event loop that created it (the HTTP server guarantees this).  The
blocking engine call runs in a worker thread; its progress events hop
back onto the loop via ``call_soon_threadsafe``.
"""

from __future__ import annotations

import asyncio
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import asdict, fields
from functools import partial
from typing import Callable, Dict, List, Optional

from repro.harness import engine, runner
from repro.harness.diskcache import spec_key
from repro.harness.engine import JobEvent
from repro.harness.runner import RunSpec
from repro.telemetry.metrics import MetricsRegistry
from repro.workloads import suite

#: Spec states a batch can observe through ``GET /jobs/<id>``.
TERMINAL_STATES = ("done", "cache-hit", "failed")

_SPEC_FIELDS = {f.name for f in fields(RunSpec)}


class FleetError(ValueError):
    """Invalid submission (unknown benchmark, malformed spec, ...)."""


class FleetUnavailable(RuntimeError):
    """The daemon is draining and no longer accepts jobs."""


class EventBus:
    """Multiplexed event stream with bounded replayable history.

    ``publish`` fans a JSON-ready dict out to every subscriber queue
    and appends it to a bounded history; ``subscribe(backlog=True)``
    seeds a fresh queue with that history so a late-joining dashboard
    reconstructs the fleet state before going live.
    """

    def __init__(self, retain: int = 4096):
        self.history: deque = deque(maxlen=retain)
        self.published = 0
        self._subscribers: List[asyncio.Queue] = []

    def publish(self, doc: dict) -> None:
        self.history.append(doc)
        self.published += 1
        for queue in self._subscribers:
            queue.put_nowait(doc)

    def subscribe(self, backlog: bool = True) -> asyncio.Queue:
        queue: asyncio.Queue = asyncio.Queue()
        if backlog:
            for doc in self.history:
                queue.put_nowait(doc)
        self._subscribers.append(queue)
        return queue

    def unsubscribe(self, queue: asyncio.Queue) -> None:
        if queue in self._subscribers:
            self._subscribers.remove(queue)


class SpecEntry:
    """One unique spec key's lifecycle across every batch that names it."""

    __slots__ = ("spec", "key", "state", "owner", "wall_s", "error", "done")

    def __init__(self, spec: RunSpec, key: str, state: str, owner: str):
        self.spec = spec
        self.key = key
        self.state = state          # queued|running|done|cache-hit|failed
        self.owner = owner          # batch id that simulates (or found) it
        self.wall_s: Optional[float] = None
        self.error: Optional[str] = None
        self.done = asyncio.Event()
        if state in TERMINAL_STATES:
            self.done.set()


class Job:
    """One submitted batch of specs."""

    __slots__ = ("id", "specs", "keys", "coalesced", "coalesced_idx",
                 "state", "error", "leg_cycles", "created", "started",
                 "finished", "done_event")

    def __init__(self, job_id: str, specs: List[RunSpec], keys: List[str],
                 leg_cycles: Optional[int]):
        self.id = job_id
        self.specs = specs
        self.keys = keys
        self.coalesced: set = set()       # keys to await (dedup waits)
        self.coalesced_idx: set = set()   # positions shown as coalesced
        self.state = "queued"       # queued|running|done|failed
        self.error: Optional[str] = None
        self.leg_cycles = leg_cycles
        self.created = time.monotonic()
        self.started: Optional[float] = None
        self.finished: Optional[float] = None
        self.done_event = asyncio.Event()


class FleetScheduler:
    """Job queue + dedup + event bus + metrics over the engine.

    ``engine_call`` defaults to :func:`repro.harness.engine.run_specs`
    (or :func:`run_specs_sharded` when a batch asks for ``leg_cycles``)
    and is injectable so tests can hold a simulation in flight and
    prove the dedup semantics deterministically.
    """

    def __init__(self, jobs: Optional[int] = None,
                 max_concurrent_batches: int = 1,
                 engine_call: Optional[Callable] = None,
                 retain_events: int = 4096):
        self.jobs = engine.resolve_jobs(jobs)
        self.engine_call = engine_call
        self.bus = EventBus(retain=retain_events)
        self.metrics = MetricsRegistry()
        self.started_at = time.monotonic()
        self.draining = False
        self._jobs: Dict[str, Job] = {}
        self._order: List[str] = []
        self._entries: Dict[str, SpecEntry] = {}
        self._next_id = 0
        self._admission = asyncio.Semaphore(max_concurrent_batches)
        self._engine_pool = ThreadPoolExecutor(
            max_workers=max_concurrent_batches,
            thread_name_prefix="fleet-engine")
        self._tasks: List[asyncio.Task] = []

        m = self.metrics
        self._queue_depth = m.gauge(
            "fleet.queue_depth", "batches waiting for engine admission")
        self._in_flight = m.gauge(
            "fleet.in_flight", "specs currently simulating")
        self._jobs_submitted = m.counter(
            "fleet.jobs_submitted", "batches accepted")
        self._jobs_completed = m.counter(
            "fleet.jobs_completed", "batches finished")
        self._jobs_failed = m.counter("fleet.jobs_failed", "batches failed")
        self._specs_submitted = m.counter(
            "fleet.specs_submitted", "specs across all batches")
        self._cache_hits = m.counter(
            "fleet.cache_hits", "specs served from the record cache")
        self._cache_misses = m.counter(
            "fleet.cache_misses", "specs that needed a simulation")
        self._coalesced = m.counter(
            "fleet.dedup_coalesced",
            "specs coalesced onto an identical in-flight simulation")
        self._sim_runs = m.counter(
            "fleet.sim_runs", "simulations actually launched")
        m.gauge("fleet.uptime_seconds", "seconds since daemon start")
        m.gauge("fleet.runner_sim_runs",
                "runner.SIM_RUNS in the daemon process (in-process "
                "simulations only)")

    # -- submission ----------------------------------------------------------

    def parse_specs(self, docs: List[dict]) -> List[RunSpec]:
        """Validate raw spec dicts into :class:`RunSpec`\\ s (raises
        :class:`FleetError` with a readable message on bad input)."""
        if not isinstance(docs, list) or not docs:
            raise FleetError("specs must be a non-empty list")
        specs = []
        known = set(suite.extended_names())
        for i, doc in enumerate(docs):
            if not isinstance(doc, dict):
                raise FleetError(f"specs[{i}] is not an object")
            unknown = set(doc) - _SPEC_FIELDS
            if unknown:
                raise FleetError(f"specs[{i}] has unknown field(s) "
                                 f"{sorted(unknown)}")
            if doc.get("benchmark") not in known:
                raise FleetError(
                    f"specs[{i}]: unknown benchmark "
                    f"{doc.get('benchmark')!r}; known: "
                    f"{', '.join(sorted(known))}")
            try:
                specs.append(RunSpec(**doc))
            except TypeError as exc:
                raise FleetError(f"specs[{i}]: {exc}")
        return specs

    def submit(self, specs: List[RunSpec],
               leg_cycles: Optional[int] = None) -> Job:
        """Accept one batch; classify each spec, start the job task.

        Classification per unique key, in order:

        1. already terminal in the record cache or the entry table —
           ``cache-hit`` (free),
        2. queued/running under another batch — ``coalesced`` (waits
           for that simulation; never launches its own),
        3. otherwise — fresh: a new ``queued`` entry owned by this
           batch.
        """
        if self.draining:
            raise FleetUnavailable("daemon is draining; job refused")
        if leg_cycles is not None and leg_cycles < 1:
            raise FleetError(f"leg_cycles must be >= 1, got {leg_cycles}")
        self._next_id += 1
        job = Job(f"b{self._next_id}", list(specs),
                  [spec_key(s) for s in specs], leg_cycles)
        self._jobs[job.id] = job
        self._order.append(job.id)
        self._jobs_submitted.inc()
        self._specs_submitted.inc(len(job.specs))

        fresh: List[RunSpec] = []
        hits = coalesced = 0
        for index, (spec, key) in enumerate(zip(job.specs, job.keys)):
            entry = self._entries.get(key)
            if entry is not None and entry.state in ("queued", "running"):
                job.coalesced.add(key)
                job.coalesced_idx.add(index)
                self._coalesced.inc()
                coalesced += 1
                continue
            if entry is not None and entry.state in ("done", "cache-hit"):
                self._cache_hits.inc()
                hits += 1
                continue
            if runner.cached_record(spec) is not None:
                self._entries[key] = SpecEntry(spec, key, "cache-hit",
                                               job.id)
                self._cache_hits.inc()
                hits += 1
                continue
            # Fresh: this batch owns the simulation.  A duplicate key
            # later in the same batch hits the queued entry above and
            # coalesces, so one batch never simulates a spec twice.
            self._entries[key] = SpecEntry(spec, key, "queued", job.id)
            self._cache_misses.inc()
            fresh.append(spec)

        self.publish({"type": "fleet", "kind": "job-submitted",
                      "batch": job.id, "ts": round(time.monotonic(), 4),
                      "specs": len(job.specs), "fresh": len(fresh),
                      "cache_hits": hits, "coalesced": coalesced,
                      "benchmarks": sorted({s.benchmark
                                            for s in job.specs})})
        task = asyncio.get_running_loop().create_task(
            self._run_job(job, fresh))
        self._tasks.append(task)
        task.add_done_callback(self._tasks.remove)
        return job

    # -- execution -----------------------------------------------------------

    def _engine_fn(self, job: Job) -> Callable:
        if self.engine_call is not None:
            return self.engine_call
        if job.leg_cycles is not None:
            return partial(engine.run_specs_sharded,
                           leg_cycles=job.leg_cycles)
        return engine.run_specs

    async def _run_job(self, job: Job, fresh: List[RunSpec]) -> None:
        loop = asyncio.get_running_loop()
        self._queue_depth.inc()
        async with self._admission:
            self._queue_depth.dec()
            job.state = "running"
            job.started = time.monotonic()
            self.publish({"type": "fleet", "kind": "job-started",
                          "batch": job.id,
                          "ts": round(job.started, 4)})
            owned = [s for s in fresh
                     if self._entries[spec_key(s)].owner == job.id]
            try:
                if owned:
                    bridge = _BridgeSink(self, loop)
                    call = self._engine_fn(job)
                    await loop.run_in_executor(
                        self._engine_pool,
                        partial(call, owned, jobs=self.jobs,
                                progress=bridge, batch=job.id))
                for spec in owned:
                    entry = self._entries[spec_key(spec)]
                    if entry.state not in TERMINAL_STATES:
                        entry.state = "done"
                    entry.done.set()
            except Exception as exc:  # engine/worker failure
                job.error = f"{type(exc).__name__}: {exc}"
                for spec in owned:
                    entry = self._entries[spec_key(spec)]
                    if entry.state not in TERMINAL_STATES:
                        entry.state = "failed"
                        entry.error = job.error
                    entry.done.set()

        # Wait for coalesced keys simulated by other batches.
        for key in job.coalesced:
            entry = self._entries.get(key)
            if entry is not None and entry.owner != job.id:
                await entry.done.wait()
        failed = [k for k in job.keys
                  if self._entries.get(k) is not None
                  and self._entries[k].state == "failed"]
        job.state = "failed" if (job.error or failed) else "done"
        if job.state == "failed":
            self._jobs_failed.inc()
            if job.error is None:
                job.error = (f"{len(failed)} spec(s) failed in the "
                             f"owning batch")
        else:
            self._jobs_completed.inc()
        job.finished = time.monotonic()
        self.publish({"type": "fleet", "kind": "job-finished",
                      "batch": job.id, "state": job.state,
                      "ts": round(job.finished, 4),
                      "wall_s": round(job.finished - job.created, 4),
                      "error": job.error})
        job.done_event.set()

    def _on_engine_event(self, event: JobEvent) -> None:
        """Loop-side handler for one engine progress event."""
        entry = self._entries.get(event.spec_key)
        if entry is not None:
            if event.kind == "started":
                entry.state = "running"
                self._in_flight.inc()
            elif event.kind == "cache-hit":
                # Another process warmed the shared disk cache between
                # submission and admission; the engine skipped the run.
                entry.state = "cache-hit"
                self._cache_hits.inc()
            elif event.kind == "finished":
                if entry.state == "running":
                    self._in_flight.dec()
                entry.state = "done"
                entry.wall_s = event.wall_s
                self._sim_runs.inc()
                wall_ms = int((event.wall_s or 0.0) * 1000)
                self.metrics.histogram(
                    f"fleet.wall_ms.{event.benchmark}",
                    "per-benchmark simulation wall time (ms)"
                ).observe(wall_ms)
        self.publish(event.to_json())

    def publish(self, doc: dict) -> None:
        self.bus.publish(doc)

    # -- views ---------------------------------------------------------------

    def spec_row(self, job: Job, index: int) -> dict:
        key = job.keys[index]
        entry = self._entries.get(key)
        row = {"spec": key, "benchmark": job.specs[index].benchmark,
               "state": entry.state if entry is not None else "unknown",
               "coalesced": index in job.coalesced_idx}
        if entry is not None and entry.wall_s is not None:
            row["wall_s"] = round(entry.wall_s, 4)
        if entry is not None and entry.error:
            row["error"] = entry.error
        return row

    def job_json(self, job: Job, specs: bool = True) -> dict:
        rows = [self.spec_row(job, i) for i in range(len(job.specs))]
        doc = {"job": job.id, "state": job.state,
               "specs": len(job.specs),
               "completed": sum(1 for r in rows
                                if r["state"] in TERMINAL_STATES),
               "error": job.error,
               "age_s": round(time.monotonic() - job.created, 3)}
        if specs:
            doc["spec_states"] = rows
        return doc

    def jobs_json(self) -> List[dict]:
        return [self.job_json(self._jobs[jid], specs=False)
                for jid in self._order]

    def get_job(self, job_id: str) -> Optional[Job]:
        return self._jobs.get(job_id)

    def record_json(self, key: str) -> Optional[dict]:
        """The cached record for one spec key, in the disk-cache
        envelope shape (``{"spec", "record"}``), or None."""
        entry = self._entries.get(key)
        if entry is None:
            return None
        record = runner.cached_record(entry.spec)
        if record is None:
            return None
        return {"spec": asdict(entry.spec), "record": record.to_json()}

    def refresh_gauges(self) -> None:
        """Scrape-time gauges (uptime, in-process SIM_RUNS)."""
        self.metrics.gauge("fleet.uptime_seconds").set(
            round(time.monotonic() - self.started_at, 3))
        self.metrics.gauge("fleet.runner_sim_runs").set(runner.SIM_RUNS)

    # -- shutdown ------------------------------------------------------------

    async def drain(self) -> int:
        """Refuse new jobs, wait for every accepted one, announce
        shutdown on the bus; returns the number of jobs drained."""
        self.draining = True
        pending = list(self._tasks)
        if pending:
            await asyncio.gather(*pending, return_exceptions=True)
        self.publish({"type": "fleet", "kind": "shutdown",
                      "ts": round(time.monotonic(), 4),
                      "jobs": len(self._order)})
        self._engine_pool.shutdown(wait=True)
        return len(pending)


class _BridgeSink:
    """ProgressSink that hops engine-thread events onto the loop."""

    def __init__(self, scheduler: FleetScheduler,
                 loop: asyncio.AbstractEventLoop):
        self.scheduler = scheduler
        self.loop = loop

    def emit(self, event: JobEvent) -> None:
        self.loop.call_soon_threadsafe(
            self.scheduler._on_engine_event, event)

    def close(self) -> None:
        pass
