"""Stdlib HTTP client for the fleet daemon.

One :class:`FleetClient` per base URL; every call opens a fresh
``http.client.HTTPConnection`` (the daemon closes connections after
each response anyway), so the client is trivially thread-safe and
never holds a stale socket.  ``repro submit`` / ``repro jobs`` /
``repro watch`` are thin wrappers over these methods.
"""

from __future__ import annotations

import http.client
import json
import urllib.parse
from typing import Iterator, List, Optional

from repro.fleet.server import DEFAULT_HOST, DEFAULT_PORT


class FleetClientError(RuntimeError):
    """Connection failure or non-2xx response from the daemon."""

    def __init__(self, message: str, status: Optional[int] = None):
        super().__init__(message)
        self.status = status


def default_base_url() -> str:
    return f"http://{DEFAULT_HOST}:{DEFAULT_PORT}"


class FleetClient:
    """Typed access to every daemon endpoint."""

    def __init__(self, base_url: Optional[str] = None,
                 timeout: float = 30.0):
        url = urllib.parse.urlsplit(base_url or default_base_url())
        if url.scheme not in ("http", ""):
            raise FleetClientError(f"unsupported scheme {url.scheme!r}")
        self.host = url.hostname or DEFAULT_HOST
        self.port = url.port or DEFAULT_PORT
        self.timeout = timeout

    def _connect(self, timeout: Optional[float]) -> http.client.HTTPConnection:
        return http.client.HTTPConnection(self.host, self.port,
                                          timeout=timeout)

    def _request(self, method: str, path: str,
                 body: Optional[dict] = None,
                 timeout: Optional[float] = -1) -> dict:
        """One JSON round trip; raises :class:`FleetClientError` on any
        connection failure or non-2xx status (carrying the daemon's
        ``error`` message when it sent one)."""
        if timeout == -1:
            timeout = self.timeout
        conn = self._connect(timeout)
        try:
            payload = (json.dumps(body).encode("utf-8")
                       if body is not None else None)
            headers = {"Content-Type": "application/json"} if payload \
                else {}
            conn.request(method, path, body=payload, headers=headers)
            resp = conn.getresponse()
            raw = resp.read()
        except (OSError, http.client.HTTPException) as exc:
            raise FleetClientError(
                f"fleet daemon unreachable at "
                f"http://{self.host}:{self.port}: {exc}")
        finally:
            conn.close()
        try:
            doc = json.loads(raw.decode("utf-8")) if raw else {}
        except (UnicodeDecodeError, json.JSONDecodeError):
            doc = {"raw": raw.decode("utf-8", "replace")}
        if resp.status >= 300:
            message = doc.get("error") if isinstance(doc, dict) else None
            raise FleetClientError(
                message or f"HTTP {resp.status} for {method} {path}",
                status=resp.status)
        return doc

    # -- endpoints -----------------------------------------------------------

    def submit(self, spec_docs: List[dict],
               leg_cycles: Optional[int] = None,
               wait: bool = False) -> dict:
        """POST a batch; with ``wait=True`` long-poll to completion."""
        body = {"specs": spec_docs}
        if leg_cycles is not None:
            body["leg_cycles"] = leg_cycles
        doc = self._request("POST", "/jobs", body=body)
        if wait:
            return self.job(doc["job"], wait=True)
        return doc

    def jobs(self) -> List[dict]:
        return self._request("GET", "/jobs")["jobs"]

    def job(self, job_id: str, wait: bool = False) -> dict:
        path = f"/jobs/{urllib.parse.quote(job_id)}"
        if wait:
            # Long poll: the daemon answers when the job is terminal,
            # however long the simulations take — no client timeout.
            return self._request("GET", path + "?wait=1", timeout=None)
        return self._request("GET", path)

    def record(self, spec_key: str) -> dict:
        return self._request(
            "GET", f"/records/{urllib.parse.quote(spec_key)}")

    def diff(self, a: str, b: str,
             threshold: Optional[float] = None) -> dict:
        query = {"a": a, "b": b}
        if threshold is not None:
            query["threshold"] = str(threshold)
        return self._request(
            "GET", "/diff?" + urllib.parse.urlencode(query))

    def metrics(self) -> str:
        """Raw Prometheus text from ``GET /metrics``."""
        conn = self._connect(self.timeout)
        try:
            conn.request("GET", "/metrics")
            resp = conn.getresponse()
            raw = resp.read()
        except (OSError, http.client.HTTPException) as exc:
            raise FleetClientError(f"metrics scrape failed: {exc}")
        finally:
            conn.close()
        if resp.status != 200:
            raise FleetClientError(f"HTTP {resp.status} for GET /metrics",
                                   status=resp.status)
        return raw.decode("utf-8")

    def health(self) -> dict:
        return self._request("GET", "/healthz")

    def shutdown(self) -> dict:
        return self._request("POST", "/shutdown")

    def events(self, fmt: str = "jsonl",
               backlog: bool = True) -> Iterator[dict]:
        """Tail ``GET /events`` as parsed JSON docs until the daemon
        announces shutdown or the connection drops."""
        query = {"format": fmt} if fmt == "jsonl" else {}
        if not backlog:
            query["backlog"] = "0"
        path = "/events"
        if query:
            path += "?" + urllib.parse.urlencode(query)
        conn = self._connect(None)  # stream: no read timeout
        try:
            conn.request("GET", path)
            resp = conn.getresponse()
            if resp.status != 200:
                raise FleetClientError(
                    f"HTTP {resp.status} for GET /events",
                    status=resp.status)
            while True:
                line = resp.readline()
                if not line:
                    return
                text = line.decode("utf-8").strip()
                if not text:
                    continue
                if text.startswith("data:"):  # SSE framing
                    text = text[len("data:"):].strip()
                try:
                    yield json.loads(text)
                except json.JSONDecodeError:
                    continue
        except (OSError, http.client.HTTPException) as exc:
            raise FleetClientError(f"event stream dropped: {exc}")
        finally:
            conn.close()
