"""Fleet service: a long-running daemon serving simulation jobs.

The single-run harness already has the hard parts — deterministic
``RunSpec -> RunRecord`` execution, a content-keyed disk cache, a
process-pool engine with structured :class:`JobEvent` progress, and
Prometheus exposition.  This package wraps them in a job daemon so a
*fleet* of runs becomes observable live instead of post-hoc:

* :mod:`repro.fleet.scheduler` — the asyncio job queue: batches of
  specs admitted one engine call at a time, server-side dedup of
  in-flight identical spec keys (concurrent submitters share one
  simulation, backed by the disk cache), an event bus multiplexing
  every batch's engine events, and live fleet metrics.
* :mod:`repro.fleet.server` — a small stdlib-only HTTP/JSON API on
  asyncio streams: ``POST /jobs``, ``GET /jobs[/<id>]``,
  ``GET /records/<key>``, ``GET /diff``, ``GET /events`` (SSE or
  JSONL), ``GET /metrics`` (Prometheus text), graceful SIGTERM drain.
* :mod:`repro.fleet.client` — the stdlib client behind
  ``repro submit`` / ``repro jobs`` / ``repro watch``.
* :mod:`repro.fleet.watch` — the live terminal dashboard, which also
  replays recorded event streams offline (``watch --from``).
"""

from repro.fleet.scheduler import (EventBus, FleetError,  # noqa: F401
                                   FleetScheduler, FleetUnavailable)
from repro.fleet.server import (DEFAULT_HOST, DEFAULT_PORT,  # noqa: F401
                                BackgroundFleet, FleetServer, serve)
from repro.fleet.client import FleetClient, FleetClientError  # noqa: F401
