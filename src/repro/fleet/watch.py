"""Live terminal dashboard over the fleet event stream.

``repro watch`` tails ``GET /events`` and folds every event into a
:class:`FleetState`; :func:`render` turns that state into a compact
dashboard (fleet totals, cache-hit rate, ETA, one progress line per
job).  The fold is pure — event docs in, state out — so
``repro watch --from events.jsonl`` replays a recorded stream through
the *same* renderer offline, and the whole pipeline is unit-testable
without a socket.
"""

from __future__ import annotations

import json
import sys
from typing import Dict, Iterable, List, Optional, TextIO

#: Engine event kinds that advance a spec toward terminal.
_TERMINAL_KINDS = ("finished", "cache-hit")


class JobView:
    """Folded view of one batch, fed by fleet + engine events."""

    __slots__ = ("id", "state", "specs", "fresh", "cache_hits",
                 "coalesced", "finished_specs", "benchmarks", "wall_s",
                 "error", "eta_s")

    def __init__(self, job_id: str):
        self.id = job_id
        self.state = "queued"
        self.specs = 0
        self.fresh = 0
        self.cache_hits = 0
        self.coalesced = 0
        self.finished_specs = 0
        self.benchmarks: List[str] = []
        self.wall_s: Optional[float] = None
        self.error: Optional[str] = None
        self.eta_s: Optional[float] = None


class FleetState:
    """Everything the dashboard shows, folded from the event stream."""

    def __init__(self) -> None:
        self.jobs: Dict[str, JobView] = {}
        self.order: List[str] = []
        self.events = 0
        self.sim_runs = 0
        self.sim_wall_s = 0.0
        self.cache_hits = 0
        self.coalesced = 0
        self.shutdown = False

    def _job(self, job_id: str) -> JobView:
        view = self.jobs.get(job_id)
        if view is None:
            view = self.jobs[job_id] = JobView(job_id)
            self.order.append(job_id)
        return view

    def apply(self, doc: dict) -> None:
        """Fold one event document (fleet- or engine-level) in."""
        self.events += 1
        if doc.get("type") == "fleet":
            self._apply_fleet(doc)
            return
        # Engine JobEvent documents: demuxed by their batch tag.
        batch = doc.get("batch")
        kind = doc.get("kind")
        view = self._job(batch) if batch else None
        if kind == "finished":
            self.sim_runs += 1
            self.sim_wall_s += float(doc.get("wall_s") or 0.0)
            if view is not None:
                view.finished_specs += 1
                view.eta_s = doc.get("eta_s")
        elif kind == "cache-hit" and view is not None:
            view.finished_specs += 1

    def _apply_fleet(self, doc: dict) -> None:
        kind = doc.get("kind")
        if kind == "shutdown":
            self.shutdown = True
            return
        view = self._job(doc.get("batch", "?"))
        if kind == "job-submitted":
            view.specs = int(doc.get("specs", 0))
            view.fresh = int(doc.get("fresh", 0))
            view.cache_hits = int(doc.get("cache_hits", 0))
            view.coalesced = int(doc.get("coalesced", 0))
            view.benchmarks = list(doc.get("benchmarks") or ())
            self.cache_hits += view.cache_hits
            self.coalesced += view.coalesced
        elif kind == "job-started":
            view.state = "running"
        elif kind == "job-finished":
            view.state = doc.get("state", "done")
            view.wall_s = doc.get("wall_s")
            view.error = doc.get("error")
            view.eta_s = None
            if view.state == "done":
                # Coalesced specs finish under their owning batch's
                # tag; a closed job is complete by definition.
                view.finished_specs = max(view.finished_specs,
                                          view.specs - view.cache_hits)

    # -- derived -------------------------------------------------------------

    @property
    def total_specs(self) -> int:
        return sum(v.specs for v in self.jobs.values())

    @property
    def cache_hit_rate(self) -> Optional[float]:
        if not self.total_specs:
            return None
        return self.cache_hits / self.total_specs

    @property
    def eta_s(self) -> Optional[float]:
        etas = [v.eta_s for v in self.jobs.values() if v.eta_s is not None]
        return max(etas) if etas else None


def _bar(done: int, total: int, width: int = 20) -> str:
    total = max(total, 1)
    fill = int(width * min(done, total) / total)
    return "[" + "#" * fill + "-" * (width - fill) + "]"


def render(state: FleetState, width: int = 80) -> str:
    """The dashboard: a header of fleet totals + one line per job."""
    counts: Dict[str, int] = {}
    for view in state.jobs.values():
        counts[view.state] = counts.get(view.state, 0) + 1
    rate = state.cache_hit_rate
    header = (f"fleet: {len(state.jobs)} job(s) "
              f"({counts.get('queued', 0)} queued, "
              f"{counts.get('running', 0)} running, "
              f"{counts.get('done', 0)} done, "
              f"{counts.get('failed', 0)} failed)  "
              f"specs {state.total_specs}  sims {state.sim_runs}")
    second = (f"cache-hit {rate:.0%}  " if rate is not None else "") + \
        f"coalesced {state.coalesced}  events {state.events}"
    eta = state.eta_s
    if eta is not None:
        second += f"  eta {eta:.1f}s"
    if state.shutdown:
        second += "  [daemon shut down]"
    lines = [header[:width], second[:width]]
    for job_id in state.order:
        view = state.jobs[job_id]
        done = view.finished_specs + view.cache_hits
        line = (f"  {view.id:<5} {view.state:<8} "
                f"{_bar(done, view.specs)} {done}/{view.specs}")
        if view.benchmarks:
            line += "  " + ",".join(view.benchmarks)
        if view.wall_s is not None:
            line += f"  {view.wall_s:.1f}s"
        if view.error:
            line += f"  error: {view.error}"
        lines.append(line[:width])
    return "\n".join(lines)


def replay_lines(lines: Iterable[str]) -> FleetState:
    """Fold a recorded JSONL event stream (``watch --from``)."""
    state = FleetState()
    for line in lines:
        line = line.strip()
        if line.startswith("data:"):  # tolerate recorded SSE frames
            line = line[len("data:"):].strip()
        if not line:
            continue
        try:
            doc = json.loads(line)
        except json.JSONDecodeError:
            continue
        if isinstance(doc, dict):
            state.apply(doc)
    return state


def replay_file(path: str) -> FleetState:
    with open(path, "r") as fh:
        return replay_lines(fh)


def watch_stream(events: Iterable[dict], out: TextIO = sys.stdout,
                 redraw: Optional[bool] = None, width: int = 100,
                 raw_json: bool = False) -> FleetState:
    """Drive the dashboard from a live event iterator.

    With ``raw_json`` every event is passed through as one JSON line
    (machine-friendly ``repro watch --json``).  Otherwise the dashboard
    redraws in place on a tty (ANSI cursor-up) and appends frames on a
    pipe.
    """
    state = FleetState()
    if redraw is None:
        redraw = out.isatty()
    last_height = 0
    for doc in events:
        state.apply(doc)
        if raw_json:
            out.write(json.dumps(doc, sort_keys=True) + "\n")
            out.flush()
            continue
        frame = render(state, width=width)
        if redraw and last_height:
            out.write(f"\x1b[{last_height}F\x1b[J")
        out.write(frame + "\n")
        out.flush()
        last_height = frame.count("\n") + 1
        if state.shutdown:
            break
    return state
