"""The sample-collector "thread" (section 4.1, part 3).

"We use a separate Java thread that polls the kernel device driver via
the JNI interface whether there are any new samples.  The polling
interval is adaptively set ... depending on the size of the sample
buffer and the sampling rate.  This makes sure that no samples will be
dropped due to a full sample buffer."

In the simulation the thread is a self-rescheduling virtual-time event:
each poll drains the user library, hands the EIP batch to the
monitoring controller (which charges the mapping cost), and adapts the
next polling delay — shorter when the buffer runs hot, longer when
polls come back nearly empty.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.core.config import PerfmonConfig
from repro.lineage import NULL_LEDGER
from repro.perfmon.userlib import UserSampleLibrary
from repro.telemetry import NULL_TELEMETRY
from repro.vm.scheduler import VirtualTimeScheduler


class CollectorThread:
    """Adaptive polling loop feeding the monitoring controller."""

    def __init__(self, userlib: UserSampleLibrary,
                 deliver: Callable[[List[int]], object],
                 scheduler: VirtualTimeScheduler,
                 config: PerfmonConfig, telemetry=None, lineage=None):
        self.userlib = userlib
        self.deliver = deliver
        self.scheduler = scheduler
        self.config = config
        self._lineage = lineage if lineage is not None else NULL_LEDGER
        self.poll_interval = config.poll_min_cycles * 4
        self.polls = 0
        self.samples_delivered = 0
        self._running = False
        tele = telemetry or NULL_TELEMETRY
        self._trace = tele.tracer
        metrics = tele.metrics
        self._m_polls = metrics.counter(
            "perfmon.collector.polls", "collector-thread poll ticks")
        self._m_delivered = metrics.counter(
            "perfmon.collector.samples_delivered",
            "EIPs handed to the controller")
        self._m_batch = metrics.histogram(
            "perfmon.collector.batch_size", "samples per poll")
        self._m_interval = metrics.gauge(
            "perfmon.collector.poll_interval",
            "adaptive polling delay in cycles")
        self._m_interval.set(self.poll_interval)

    def start(self, now: int = 0) -> None:
        if self._running:
            raise RuntimeError("collector already running")
        self._running = True
        self.scheduler.after(now, self.poll_interval, self._tick)

    def stop(self) -> None:
        self._running = False

    def drain_now(self) -> int:
        """Synchronous final drain (end of execution)."""
        self._trace.begin("collector.drain", cat="perfmon")
        eips = self.userlib.read_samples_with_fill()
        if eips:
            self._lineage.sample_batch(len(eips), "drain")
            self.deliver(eips)
            self.samples_delivered += len(eips)
            self._m_delivered.inc(len(eips))
        self._trace.end(batch=len(eips))
        return len(eips)

    # -- the periodic tick -----------------------------------------------------

    def _tick(self, now: int) -> None:
        if not self._running:
            return
        self.polls += 1
        self._m_polls.inc()
        self._trace.begin("collector.poll", cat="perfmon")
        eips = self.userlib.read_samples_with_fill()
        if eips:
            self._lineage.sample_batch(len(eips), "poll")
            self.deliver(eips)
            self.samples_delivered += len(eips)
            self._m_delivered.inc(len(eips))
        self._m_batch.observe(len(eips))
        self._adapt(len(eips))
        self._trace.end(batch=len(eips), next_poll=self.poll_interval)
        self.scheduler.after(now, self.poll_interval, self._tick)

    def _adapt(self, batch_size: int) -> None:
        """Halve the interval when polls come back heavy (buffer at risk
        of overflowing); back off when they come back nearly empty —
        "depending on the size of the sample buffer and the sampling
        rate" (section 4.1)."""
        cfg = self.config
        if batch_size >= cfg.poll_batch_high:
            self.poll_interval = max(cfg.poll_min_cycles,
                                     self.poll_interval // 2)
        elif batch_size < cfg.poll_batch_low:
            self.poll_interval = min(cfg.poll_max_cycles,
                                     self.poll_interval * 2)
        self._m_interval.set(self.poll_interval)
