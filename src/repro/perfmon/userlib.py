"""Native shared library analog (section 4.1, part 2).

"Since we cannot call device drivers directly from Java ... we
developed a native library to provide an interface to the kernel
functions and access it via the Java Native Interface (JNI). ...  We
provide a pre-allocated array to the native code.  The library function
then copies all collected samples into this array directly without any
JNI calls. We only need to make sure that the GC does not interfere
during this transfer."

The cost structure matters for Figure 2: one fixed JNI round trip per
poll plus a small per-sample copy cost into the pre-allocated ``int[]``
— *not* a JNI call per sample.  The GC-interference guard is modeled
explicitly: the VM's GC is disabled for the duration of the copy (the
paper's argument: no allocation happens in the copying code, so the GC
cannot be triggered; we assert exactly that).
"""

from __future__ import annotations

from typing import Callable, List

from repro.core.config import PerfmonConfig
from repro.perfmon.kernel import PerfmonSession


class UserSampleLibrary:
    """The libpfm-style user-space layer with its 80 KB buffer."""

    def __init__(self, session: PerfmonSession, config: PerfmonConfig,
                 charge: Callable[[int], None],
                 gc_guard=None):
        self.session = session
        self.config = config
        self.charge = charge
        #: Context-manager factory disabling the GC around the copy
        #: (provided by the VM; None in standalone tests).
        self.gc_guard = gc_guard
        #: Buffer capacity in samples: 80 KB / 40-byte samples.
        self.capacity = config.user_buffer_bytes // 40
        self.polls = 0
        self.samples_copied = 0

    def read_samples(self) -> List[int]:
        """One poll: drain the kernel buffer into the pre-allocated array.

        Returns the raw EIPs (the collector thread hands them to the
        VM's monitoring module).  Costs: one fixed JNI round trip plus
        the batched copy.
        """
        self.polls += 1
        self.charge(self.config.poll_cost)
        if self.gc_guard is not None:
            with self.gc_guard():
                batch = self.session.read(self.capacity)
        else:
            batch = self.session.read(self.capacity)
        if not batch:
            return []
        self.charge(self.config.user_copy_cost * len(batch))
        self.samples_copied += len(batch)
        return [s.eip for s in batch]

    @property
    def fill_ratio_last(self) -> float:
        """How full the user buffer was on the last poll (adaptivity input)."""
        return 0.0 if self.capacity == 0 else self._last_fill

    _last_fill = 0.0

    def read_samples_with_fill(self) -> List[int]:
        """Like :meth:`read_samples`, also recording the fill ratio."""
        eips = self.read_samples()
        self._last_fill = len(eips) / self.capacity if self.capacity else 0.0
        return eips
