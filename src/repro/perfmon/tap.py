"""Interval tap: per-period HPM deltas for the health observatory.

The controller already closes a measurement period every
``monitor.period_cycles``; the tap rides that boundary and condenses
everything the period observed into one
:class:`repro.health.phases.Interval` vector — hardware-counter deltas
(L1D miss rate), cycle-bucket deltas (GC fraction), allocation-rate
deltas, PEBS sample counts, and compilation activity — then hands it to
the VM's :class:`repro.health.HealthMonitor`.

Strictly read-only: the tap snapshots counters that the simulation
updates anyway and subtracts; it never charges cycles or touches
mutable monitor state (``period.field_counts`` is the already-closed
per-period snapshot, so ranking reads here cannot perturb the
hot-field cache).
"""

from __future__ import annotations

from typing import Tuple

from repro.health.phases import Interval

#: Hottest fields surfaced per interval (detector evidence, not policy).
TOP_FIELDS_PER_INTERVAL = 4


class IntervalTap:
    """Observes period closes on a VM; emits Interval vectors."""

    def __init__(self, vm):
        self.vm = vm
        self._prev_cycle = 0
        self._prev_l1_access = 0
        self._prev_l1_miss = 0
        self._prev_gc_cycles = 0
        self._prev_alloc_bytes = 0
        self._prev_compiled = 0

    def on_period(self, period, now_cycle: int, samples: int,
                  attributed: int) -> None:
        """Controller hook: called right after a period closes.

        ``period`` is the just-closed :class:`PeriodRecord`;
        ``samples``/``attributed`` are the controller's per-period tallies
        (read before the controller resets them).
        """
        vm = self.vm
        if now_cycle <= self._prev_cycle:
            return  # final drain landed on the same boundary: no new data
        counts = vm.counters.counts
        l1_access = counts["L1D_ACCESS"]
        l1_miss = counts["L1D_MISS"]
        alloc_bytes = vm.plan.stats.alloc_bytes
        compiled = len(vm.codecache)

        cycles = now_cycle - self._prev_cycle
        d_access = l1_access - self._prev_l1_access
        d_miss = l1_miss - self._prev_l1_miss
        interval = Interval(
            index=period.index,
            start_cycle=self._prev_cycle,
            end_cycle=now_cycle,
            samples=samples,
            attributed=attributed,
            miss_rate=(d_miss / d_access) if d_access > 0 else 0.0,
            gc_fraction=(vm.gc_cycles - self._prev_gc_cycles) / cycles,
            alloc_rate=(alloc_bytes - self._prev_alloc_bytes) / cycles,
            recompiles=compiled - self._prev_compiled,
            sampling_paused=(vm.controller.sampling_paused
                             if vm.controller is not None else False),
            top_fields=self._top_fields(period),
            ledger_period_id=vm.lineage.last_period_id,
            ledger_ranking_id=vm.lineage.last_ranking_id,
        )

        self._prev_cycle = now_cycle
        self._prev_l1_access = l1_access
        self._prev_l1_miss = l1_miss
        self._prev_gc_cycles = vm.gc_cycles
        self._prev_alloc_bytes = alloc_bytes
        self._prev_compiled = compiled

        vm.health.on_interval(interval)

    @staticmethod
    def _top_fields(period) -> Tuple[Tuple[str, int], ...]:
        """The period's hottest fields, deterministically ordered."""
        if not period.field_counts:
            return ()
        ranked = sorted(period.field_counts.items(),
                        key=lambda kv: (-kv[1], kv[0].qualified_name))
        return tuple((field.qualified_name, count)
                     for field, count in ranked[:TOP_FIELDS_PER_INTERVAL])
