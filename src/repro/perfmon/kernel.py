"""Perfmon loadable-kernel-module analog (section 4.1, part 1).

"This kernel module is part of the Perfmon infrastructure ... It offers
the functions to access the performance counter hardware for a variety
of hardware platforms.  The kernel module hides the platform-specific
details from the JVM.  It also provides the interrupt handler that is
called by the sampling hardware when the CPU buffer for the samples is
full."

The module owns the kernel-side sample buffer: the PMU interrupt
handler appends the DS-buffer contents, and the user-space library
reads batches out (pulling any pending hardware samples first, as the
real perfmon read path does).  Overflow is counted, not fatal — the
collector thread's adaptive polling exists precisely to keep this
buffer from filling (section 4.1, part 3).
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.config import PerfmonConfig
from repro.hw.pebs import PEBSUnit, Sample
from repro.telemetry import NULL_TELEMETRY


class PerfmonSession:
    """One monitoring session: an armed event with its kernel buffer."""

    def __init__(self, config: PerfmonConfig, pebs: PEBSUnit,
                 event: str, interval: int, telemetry=None):
        self.config = config
        self.pebs = pebs
        self.event = event
        self.interval = interval
        self._buffer: List[Sample] = []
        self.samples_received = 0
        self.samples_dropped = 0
        tele = telemetry or NULL_TELEMETRY
        self._trace = tele.tracer
        metrics = tele.metrics
        self._m_interrupts = metrics.counter(
            "perfmon.kernel.interrupts", "watermark interrupts handled")
        self._m_received = metrics.counter(
            "perfmon.kernel.samples_received",
            "samples moved DS buffer -> kernel buffer")
        self._m_dropped = metrics.counter(
            "perfmon.kernel.samples_dropped",
            "samples lost to a full kernel buffer")
        self._m_fill = metrics.gauge(
            "perfmon.kernel.buffer_fill", "kernel buffer occupancy")
        pebs.configure(event, interval)

    # -- interrupt side ---------------------------------------------------------

    def on_interrupt(self, batch: List[Sample]) -> None:
        """PMU interrupt handler: move DS samples into the kernel buffer."""
        capacity = self.config.kernel_buffer_capacity
        room = capacity - len(self._buffer)
        self._m_interrupts.inc()
        if room >= len(batch):
            self._buffer.extend(batch)
            self.samples_received += len(batch)
            self._m_received.inc(len(batch))
        else:
            dropped = len(batch) - room
            self._buffer.extend(batch[:room])
            self.samples_received += room
            self.samples_dropped += dropped
            self._m_received.inc(room)
            self._m_dropped.inc(dropped)
            self._trace.instant("perfmon.buffer_overflow", cat="perfmon",
                                dropped=dropped)
        self._m_fill.set(len(self._buffer))
        self._trace.sample("perfmon.kernel.buffer_fill", len(self._buffer),
                           cat="perfmon")

    # -- read side ------------------------------------------------------------------

    def read(self, max_samples: int) -> List[Sample]:
        """Return up to ``max_samples``, draining pending hardware samples
        first (the perfmon read path)."""
        pending = self.pebs.drain()
        if pending:
            self.on_interrupt(pending)
        batch = self._buffer[:max_samples]
        del self._buffer[:len(batch)]
        if batch:
            self._m_fill.set(len(self._buffer))
        return batch

    def set_interval(self, interval: int) -> None:
        """Adjust the hardware sampling interval (auto mode)."""
        self.interval = interval
        self.pebs.set_interval(interval)

    def close(self) -> None:
        self.pebs.stop()

    @property
    def pending(self) -> int:
        return len(self._buffer)


class PerfmonKernelModule:
    """Session factory; hides the machine-specific PMU details."""

    def __init__(self, config: PerfmonConfig, telemetry=None):
        self.config = config
        self.telemetry = telemetry
        self.session: Optional[PerfmonSession] = None

    def create_session(self, pebs: PEBSUnit, event: str,
                       interval: int) -> PerfmonSession:
        """Arm the PMU; only one session at a time (one PEBS event on P4)."""
        if self.session is not None:
            raise RuntimeError("a perfmon session is already active")
        self.session = PerfmonSession(self.config, pebs, event, interval,
                                      telemetry=self.telemetry)
        return self.session

    def close_session(self) -> None:
        if self.session is not None:
            self.session.close()
            self.session = None
