"""Command-line interface: ``python -m repro <command>``.

Commands
--------
list                      the Table 1 benchmarks
run BENCH [options]       run one benchmark, print the result summary
timeline BENCH [options]  run one benchmark, print a text trace timeline
audit BENCH [options]     sampling-fidelity audit vs. exact ground truth
explain BENCH [options]   justification chain behind an online decision
doctor BENCH [options]    run-health report: online phase segmentation +
                          pathology detectors, evidence-linked to the
                          decision ledger
diff A.json B.json        structured diff of two exported run records
bench list|run|history|compare|profile|migrate
                          host-side performance observatory (see below)
table1 | table2           regenerate a table
fig2 .. fig8              regenerate a figure
ablations                 run the ablation experiments
cache stats|prune|clear   inspect, trim, or drop the persistent result
                          cache (records and resumable snapshots)
serve [options]           fleet daemon: HTTP/JSON job queue over the
                          engine with live /events and /metrics
submit BENCH... [--wait]  submit a batch to the daemon
jobs [JOB]                list the daemon's jobs (or one, --wait)
watch [--from LOG]        live fleet dashboard (or offline replay)

``bench`` runs the registered host-side benchmark cases (the CI perf
gates) with warmup/repeats and robust stats, appends every run to the
persistent ``results/bench_history.jsonl`` trajectory, scores runs
against a baseline window with improved/ok/regressed verdicts
(``compare`` exits nonzero on a regression), and self-profiles any
case into a subsystem wall-time attribution table plus collapsed
stacks for flamegraph.pl/speedscope (``profile``).

Table/figure commands accept ``--jobs N`` to fan uncached runs across N
worker processes (default: ``REPRO_JOBS`` or the CPU count; ``--jobs 1``
runs serially in-process).  Results are bit-identical either way.
``--progress`` streams live fleet events (queued/started/finished/
cache-hit, with an ETA) to stderr; ``--progress-log PATH`` appends the
same events to a JSONL log.

Examples::

    python -m repro run db --heap-mult 4 --coalloc --trace out.json
    python -m repro run db --record db.json --prom db.prom
    python -m repro audit db --json audit.json
    python -m repro explain db --fig8
    python -m repro explain db --from db.json --json lineage.json
    python -m repro doctor phased --coalloc --storm --json DOCTOR.json
    python -m repro doctor db --from db.json
    python -m repro diff a.json b.json
    python -m repro timeline db --coalloc
    python -m repro timeline phased --coalloc --phases
    python -m repro fig4 --benchmarks db,pseudojbb,compress --jobs 4
    python -m repro fig6 --progress
    python -m repro run compress --until-cycles 2000000 --checkpoint-every 500000
    python -m repro run compress --until-cycles 8000000 --resume
    python -m repro cache stats --json
    python -m repro cache prune --max-bytes 50000000 --dry-run
    python -m repro bench run --all --json BENCH_report.json
    python -m repro bench compare --from BENCH_report.json
    python -m repro bench profile interp --collapsed interp.collapsed
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.harness import experiments as ex
from repro.harness import report
from repro.harness.runner import RunSpec, execute
from repro.workloads import suite


def _version() -> str:
    try:
        from importlib.metadata import version

        return version("repro")
    except Exception:
        import repro

        return getattr(repro, "__version__", "unknown")


def _benchmark_list(value: Optional[str]) -> Optional[List[str]]:
    if not value:
        return None
    names = [v.strip() for v in value.split(",") if v.strip()]
    for name in names:
        if name not in suite.BENCHMARKS:
            raise SystemExit(f"unknown benchmark {name!r}; "
                             f"known: {', '.join(suite.all_names())}")
    return names


def cmd_list(args) -> None:
    for row in ex.table1():
        print(f"{row.name:10s} {row.description}")


def _run_spec(args) -> RunSpec:
    return RunSpec(
        benchmark=args.benchmark,
        heap_mult=args.heap_mult,
        coalloc=args.coalloc,
        monitoring=not args.no_monitoring,
        interval=args.interval,
        gc_plan=args.gc_plan,
        event=args.event,
        seed=args.seed,
        until_cycles=getattr(args, "until_cycles", None),
    )


def cmd_run(args) -> None:
    from repro.harness import runner
    from repro.telemetry import Telemetry
    from repro.telemetry.export import (write_chrome_trace, write_jsonl,
                                        write_prometheus)

    spec = _run_spec(args)
    telemetry = (Telemetry()
                 if (args.trace or args.metrics or args.prom
                     or args.collapsed)
                 else None)
    # Exported records carry the decision ledger (schema 3) and the
    # health report (schema 5), so `repro explain --from REC.json`,
    # `repro doctor --from REC.json`, and `repro diff` work on them
    # without re-running anything.
    lineage = None
    health = None
    if args.record:
        from repro.health import HealthMonitor
        from repro.lineage import DecisionLedger

        lineage = DecisionLedger()
        health = HealthMonitor()

    resume_from = None
    if args.resume:
        # CLI resume accepts any checkpoint, pure or not: the user
        # asked to continue *this* run, observers and all.  (The record
        # cache is stricter — see `runner.best_snapshot`.)
        disk = runner._disk()
        if disk is not None:
            resume_from = disk.get_snapshot(spec.base(),
                                            max_cycle=spec.until_cycles)
        if resume_from is None:
            raise SystemExit(
                f"run: no checkpoint to resume for this spec (run with "
                f"--checkpoint-every first, and keep the same options)")

    on_checkpoint = None
    stored = []
    if args.checkpoint_every or spec.until_cycles is not None:
        def on_checkpoint(snap):
            runner.store_snapshot(spec, snap)
            stored.append(snap)

    result = execute(spec, telemetry=telemetry, lineage=lineage,
                     health=health,
                     fastpath=False if args.no_fastpath else None,
                     resume_from=resume_from,
                     checkpoint_every=args.checkpoint_every,
                     on_checkpoint=on_checkpoint)
    if resume_from is not None:
        print(f"resumed              : from cycle {resume_from.cycle:,}")
        # The snapshot's own observers continued through the resume;
        # export whatever they accumulated, not the fresh (unused)
        # telemetry/ledger built above.
        if result.vm is not None and result.vm.telemetry.enabled:
            telemetry = result.vm.telemetry
    print(f"benchmark            : {result.program}")
    print(f"cycles               : {result.cycles:,}")
    print(f"instructions         : {result.instructions:,}")
    print(f"L1D misses           : {result.counters['L1D_MISS']:,} "
          f"(rate {result.l1_miss_rate:.4f})")
    print(f"L2 misses            : {result.counters['L2_MISS']:,}")
    print(f"DTLB misses          : {result.counters['DTLB_MISS']:,}")
    print(f"GC                   : {result.gc_stats.summary()}")
    print(f"cycles (app/gc/mon)  : {result.app_cycles:,} / "
          f"{result.gc_cycles:,} / {result.monitoring_cycles:,}")
    if result.monitor_summary:
        print(f"monitoring           : {result.monitor_summary}")
    else:
        print("monitoring           : disabled")
    truncated = result.vm is not None and bool(result.vm.cpu.frames)
    if truncated:
        print(f"truncated            : at --until-cycles {spec.until_cycles:,}"
              f" (resume with --resume)")
    if stored:
        print(f"checkpoints          : {len(stored)} stored "
              f"(cycles {', '.join(f'{s.cycle:,}' for s in stored)})")
    if telemetry is not None and args.trace:
        metadata = {"benchmark": spec.benchmark, "seed": spec.seed,
                    "gc_plan": spec.gc_plan, "coalloc": spec.coalloc}
        try:
            if args.trace.endswith(".jsonl"):
                write_jsonl(args.trace, telemetry.tracer, telemetry.metrics)
            else:
                write_chrome_trace(args.trace, telemetry.tracer,
                                   telemetry.metrics, metadata)
        except OSError as exc:
            raise SystemExit(f"cannot write trace to {args.trace!r}: {exc}")
        print(f"trace                : {args.trace} "
              f"({len(telemetry.tracer.spans)} spans; open in Perfetto)")
    if telemetry is not None and args.prom:
        try:
            write_prometheus(args.prom, telemetry.metrics)
        except OSError as exc:
            raise SystemExit(f"cannot write metrics to {args.prom!r}: {exc}")
        print(f"prometheus           : {args.prom}")
    if telemetry is not None and args.collapsed:
        from repro.telemetry.export import collapsed_stacks, write_collapsed

        try:
            lines = write_collapsed(args.collapsed,
                                    collapsed_stacks(telemetry.tracer))
        except OSError as exc:
            raise SystemExit(f"cannot write collapsed stacks to "
                             f"{args.collapsed!r}: {exc}")
        print(f"collapsed            : {args.collapsed} ({lines} stacks; "
              "feed to flamegraph.pl or speedscope)")
    if args.record:
        import json

        from repro.harness.runner import record_from_result

        record = record_from_result(
            spec, result, fastpath=False if args.no_fastpath else None)
        try:
            with open(args.record, "w") as fh:
                json.dump(record.to_json(), fh, indent=1)
                fh.write("\n")
        except OSError as exc:
            raise SystemExit(f"cannot write record to {args.record!r}: {exc}")
        print(f"record               : {args.record} (repro diff input)")
    if telemetry is not None and args.metrics:
        print("metrics:")
        for line in telemetry.metrics.render().splitlines():
            print(f"  {line}")


def _load_trace_spans(path: str):
    """Rebuild span events from an exported trace (JSON or JSONL)."""
    import json

    from repro.telemetry.tracer import SpanEvent

    spans = []
    with open(path, "r") as fh:
        text = fh.read()
    if not text.strip():
        return spans
    if path.endswith(".jsonl"):
        docs = [json.loads(line) for line in text.splitlines() if line.strip()]
        events = [d for d in docs if d.get("type") == "span"]
        for d in events:
            spans.append(SpanEvent(d["name"], d["cat"], d["ts"], d["dur"],
                                   d.get("depth", 0), d.get("args")))
    else:
        doc = json.loads(text)
        for ev in doc.get("traceEvents", []):
            if ev.get("ph") == "X":
                spans.append(SpanEvent(ev["name"], ev.get("cat", "vm"),
                                       ev["ts"], ev["dur"], 0,
                                       ev.get("args")))
    return spans


def cmd_timeline(args) -> None:
    from repro.telemetry import Telemetry
    from repro.telemetry.export import format_timeline
    from repro.telemetry.tracer import Tracer

    if args.from_trace:
        if args.phases:
            raise SystemExit("timeline: --phases needs a live run (it "
                             "recomputes per-interval HPM vectors); drop "
                             "--from")
        try:
            spans = _load_trace_spans(args.from_trace)
        except OSError:
            raise SystemExit(f"timeline: no trace at {args.from_trace!r} "
                             "(run `repro run BENCH --trace PATH` first)")
        except (ValueError, KeyError, TypeError, AttributeError):
            # Malformed JSON, truncated files, and well-formed JSON of
            # the wrong shape (a list, spans missing fields, ...) all
            # land here: a readable message, never a traceback.
            raise SystemExit(f"timeline: {args.from_trace!r} is not an "
                             "exported trace (JSON or JSONL)")
        if not spans:
            print(f"timeline: no spans in {args.from_trace!r}")
            return
        tracer = Tracer()
        tracer.spans = spans
        print(format_timeline(tracer, width=args.width))
        return
    telemetry = Telemetry()
    health = None
    if args.phases:
        from repro.health import HealthMonitor

        health = HealthMonitor()
    result = execute(_run_spec(args), telemetry=telemetry, health=health,
                     fastpath=False if args.no_fastpath else None)
    print(format_timeline(telemetry.tracer, total_cycles=result.cycles,
                          width=args.width))
    if health is not None:
        from repro.health.report import format_phase_overlay, format_phase_table

        health_report = health.report(result.cycles)
        print(format_phase_overlay(health_report, result.cycles,
                                   width=args.width))
        print()
        print(format_phase_table(health_report))


def cmd_table1(args) -> None:
    print(report.format_table1(ex.table1()))


def cmd_table2(args) -> None:
    print(report.format_table2(ex.table2(args.benchmark_names,
                                         jobs=args.jobs)))


def cmd_fig2(args) -> None:
    print(report.format_fig2(ex.fig2_sampling_overhead(args.benchmark_names,
                                                       jobs=args.jobs)))


def cmd_fig3(args) -> None:
    print(report.format_fig3(ex.fig3_coalloc_counts(args.benchmark_names,
                                                    jobs=args.jobs)))


def cmd_fig4(args) -> None:
    print(report.format_fig4(ex.fig4_l1_reduction(args.benchmark_names,
                                                  jobs=args.jobs)))


def cmd_fig5(args) -> None:
    print(report.format_fig5(ex.fig5_exec_time(args.benchmark_names,
                                               jobs=args.jobs)))


def cmd_fig6(args) -> None:
    print(report.format_fig6(ex.fig6_gencopy_vs_genms(jobs=args.jobs)))


def cmd_fig7(args) -> None:
    print(report.format_fig7(ex.fig7_db_timeline()))


def cmd_fig8(args) -> None:
    print(report.format_fig8(ex.fig8_revert()))


def cmd_disasm(args) -> None:
    from repro.core.interest import analyze_compiled_method
    from repro.jit.baseline import compile_baseline
    from repro.jit.disasm import format_compiled_method
    from repro.jit.opt import compile_opt

    workload = suite.build(args.benchmark)
    wanted = args.method
    method = next((m for m in workload.program.all_methods()
                   if m.qualified_name == wanted), None)
    if method is None:
        known = ", ".join(sorted(m.qualified_name
                                 for m in workload.program.all_methods()
                                 if not m.name.startswith("cold")))
        raise SystemExit(f"no method {wanted!r}; try one of: {known}")
    cm = (compile_baseline(method) if args.baseline
          else compile_opt(method))
    cm.code_addr = 0x0800_0000  # nominal base for the listing
    interest = analyze_compiled_method(cm)
    print(format_compiled_method(cm, interest))


def cmd_ablations(args) -> None:
    from repro.harness import ablations as ab

    ev = ab.event_driver_ablation(jobs=args.jobs)
    print(f"event-driver ablation ({ev.benchmark}):")
    for event, (cycles, l1, co) in ev.by_event.items():
        print(f"  {event:10s} cycles={cycles:,} coallocated={co}")
    oracle = ab.static_oracle_ablation(jobs=args.jobs)
    print(f"\nstatic-oracle ablation ({oracle.benchmark}):")
    print(f"  online speedup {oracle.online_speedup:.1%}, "
          f"oracle speedup {oracle.oracle_speedup:.1%}")
    for name in ("compress", "db"):
        pf = ab.prefetcher_ablation(name)
        print(f"\nprefetcher off ({name}): "
              f"+{pf.slowdown_without:.1%} time, "
              f"L2 misses {pf.l2_misses_with:,} -> {pf.l2_misses_without:,}")


def cmd_audit(args) -> None:
    from repro.analysis import fidelity

    intervals = tuple(v.strip() for v in args.intervals.split(",")
                      if v.strip())
    for name in intervals:
        if name not in ("25K", "50K", "100K", "auto"):
            raise SystemExit(f"unknown interval {name!r}; "
                             "known: 25K, 50K, 100K, auto")
    report = fidelity.audit_benchmark(
        args.benchmark, intervals=intervals, seed=args.seed,
        top_n=args.top, event=args.event, coalloc=args.coalloc)
    print(fidelity.format_report(report))
    if args.json:
        import json

        try:
            with open(args.json, "w") as fh:
                json.dump(report.to_json(), fh, indent=1)
                fh.write("\n")
        except OSError as exc:
            raise SystemExit(f"cannot write report to {args.json!r}: {exc}")
        print(f"\njson report: {args.json}")


def cmd_explain(args) -> None:
    from repro.lineage import DecisionLedger, explain

    if args.from_record:
        from repro.analysis.diff import load_record

        try:
            record = load_record(args.from_record)
        except OSError as exc:
            raise SystemExit(
                f"explain: cannot read {args.from_record!r}: {exc}")
        except (ValueError, KeyError, TypeError):
            raise SystemExit(f"explain: {args.from_record!r} is not an "
                             "exported run record (see `repro run "
                             "--record`)")
        doc = record.lineage
        if not doc:
            raise SystemExit(f"explain: {args.from_record!r} carries no "
                             "lineage (re-export it with this version: "
                             "`repro run BENCH --record PATH`)")
    elif args.fig8:
        from repro.harness import experiments as exps

        ledger = DecisionLedger()
        revert = exps.fig8_revert(args.benchmark, lineage=ledger)
        doc = ledger.to_json()
        print(f"fig8 intervention on {revert.benchmark}: gap applied at "
              f"period {revert.gap_applied_period}, "
              f"reverted={revert.reverted} "
              f"(period {revert.reverted_period})\n")
    else:
        ledger = DecisionLedger()
        execute(_run_spec(args), lineage=ledger,
                fastpath=False if args.no_fastpath else None)
        doc = ledger.to_json()

    problems = explain.validate(doc)
    target = explain.find_target(doc, field=args.field, revert=args.revert,
                                 decision=args.decision)
    chain = (explain.chain_ids(explain.index_entries(doc), target["id"])
             if target is not None else [])

    if args.json:
        import json

        out = {"lineage": doc, "problems": problems,
               "target": target["id"] if target else None,
               "chain": chain}
        try:
            with open(args.json, "w") as fh:
                json.dump(out, fh, indent=1)
                fh.write("\n")
        except OSError as exc:
            raise SystemExit(f"cannot write report to {args.json!r}: {exc}")
        print(f"json report: {args.json}")
    if args.dot:
        try:
            with open(args.dot, "w") as fh:
                fh.write(explain.to_dot(doc, chain=chain))
        except OSError as exc:
            raise SystemExit(f"cannot write graph to {args.dot!r}: {exc}")
        print(f"dot graph: {args.dot} (render with `dot -Tsvg`)")

    print(explain.format_summary(doc))
    if target is None:
        selector = (f"field {args.field!r}" if args.field
                    else f"revert #{args.revert}" if args.revert is not None
                    else f"decision #{args.decision}")
        raise SystemExit(f"explain: no decision matches {selector}")
    print(f"\njustification chain for #{target['id']}:")
    print(explain.format_chain(doc, target))
    if problems:
        print("\nlineage INVALID:")
        for problem in problems:
            print(f"  {problem}")
        raise SystemExit(1)


def cmd_doctor(args) -> None:
    """Run-health report: phase table, pathology findings, and — when a
    decision ledger rides along — each finding's evidence validated and
    justified against it.  Exits 1 only when evidence fails to resolve
    (the verdict itself is diagnosis, not a gate)."""
    from repro.health.report import HealthReport, format_findings, \
        format_phase_table
    from repro.lineage import explain

    storm_info = None
    if args.from_record:
        from repro.analysis.diff import load_record

        try:
            record = load_record(args.from_record)
        except OSError as exc:
            raise SystemExit(
                f"doctor: cannot read {args.from_record!r}: {exc}")
        except (ValueError, KeyError, TypeError):
            raise SystemExit(f"doctor: {args.from_record!r} is not an "
                             "exported run record (see `repro run "
                             "--record`)")
        if not record.health:
            raise SystemExit(f"doctor: {args.from_record!r} carries no "
                             "health report (re-export it with this "
                             "version: `repro run BENCH --record PATH`)")
        health_report = HealthReport.from_json(record.health)
        lineage_doc = record.lineage
        benchmark = record.program
    else:
        from dataclasses import replace

        from repro.harness import experiments as exps
        from repro.harness.runner import make_vm
        from repro.health import HealthMonitor
        from repro.lineage import DecisionLedger

        spec = _run_spec(args)
        health = HealthMonitor()
        ledger = DecisionLedger()
        if args.storm:
            if not spec.coalloc:
                # The storm intervenes through the co-allocation policy.
                print("doctor: --storm implies --coalloc")
                spec = replace(spec, coalloc=True)
            vm, workload = make_vm(
                args.benchmark, spec, lineage=ledger, health=health,
                fastpath=False if args.no_fastpath else None)
            qualified = (workload.hot_fields[0] if workload.hot_fields
                         else "String::value")
            fld = exps.resolve_field(vm.program, qualified)
            driver = exps.seed_revert_storm(vm, fld, count=args.storm_count)
            result = vm.run()
            storm_info = {"field": qualified, "begun": driver.begun,
                          "reverted": driver.reverted()}
            print(f"storm: {driver.begun} experiment(s) seeded on "
                  f"{qualified}, {driver.reverted()} reverted\n")
        else:
            result = execute(spec, lineage=ledger, health=health,
                             fastpath=False if args.no_fastpath else None)
        health_report = health.report(result.cycles)
        lineage_doc = ledger.to_json()
        benchmark = result.program

    print(f"doctor: {benchmark} — verdict {health_report.verdict.upper()} "
          f"({len(health_report.findings)} finding(s), "
          f"{len(health_report.phases)} phase(s), "
          f"{health_report.intervals} interval(s))")
    print()
    print(format_phase_table(health_report))
    print()
    print(format_findings(health_report))

    # Resolve every finding's evidence against the ledger and print the
    # justification chain behind each finding's primary evidence entry.
    problems: List[str] = []
    chains = {}
    if lineage_doc:
        problems.extend(explain.validate(lineage_doc))
        by_id = explain.index_entries(lineage_doc)
        for i, finding in enumerate(health_report.findings):
            resolved = []
            for eid in finding.ledger_ids:
                if eid in by_id:
                    resolved.append(eid)
                else:
                    problems.append(f"finding[{i}] ({finding.detector}): "
                                    f"evidence id {eid} not in ledger")
            if resolved:
                primary = resolved[-1]
                chains[str(i)] = explain.chain_ids(by_id, primary)
                print(f"\njustification chain for finding [{i}] "
                      f"{finding.detector} (ledger #{primary}):")
                print(explain.format_chain(lineage_doc, by_id[primary]))
    elif health_report.findings:
        print("\n(no decision ledger rode along: evidence ids not "
              "validated; run without --from, or re-export the record)")

    if args.json:
        import json

        out = {"benchmark": benchmark, "verdict": health_report.verdict,
               "report": health_report.to_json(), "storm": storm_info,
               "problems": problems, "chains": chains}
        try:
            with open(args.json, "w") as fh:
                json.dump(out, fh, indent=1)
                fh.write("\n")
        except OSError as exc:
            raise SystemExit(f"cannot write report to {args.json!r}: {exc}")
        print(f"\njson report: {args.json}")

    if problems:
        print("\nevidence INVALID:")
        for problem in problems:
            print(f"  {problem}")
        raise SystemExit(1)


def cmd_diff(args) -> None:
    from repro.analysis import provenance
    from repro.analysis.diff import diff_records, format_diff, load_record

    records = []
    for path in (args.record_a, args.record_b):
        try:
            records.append(load_record(path))
        except OSError as exc:
            raise SystemExit(f"diff: cannot read {path!r}: {exc}")
        except (ValueError, KeyError, TypeError):
            raise SystemExit(f"diff: {path!r} is not an exported run "
                             "record (see `repro run --record`)")
    a, b = records
    print(f"a: {provenance.describe(a.provenance)}")
    print(f"b: {provenance.describe(b.provenance)}")
    diff = diff_records(a, b, threshold=args.threshold)
    print(format_diff(diff, args.record_a, args.record_b,
                      limit=args.limit))
    if diff.significant:
        raise SystemExit(1)


def cmd_bench(args) -> None:
    from repro.bench import cli as bench_cli

    handlers = {
        "list": bench_cli.cmd_list,
        "run": bench_cli.cmd_run,
        "history": bench_cli.cmd_history,
        "compare": bench_cli.cmd_compare,
        "profile": bench_cli.cmd_profile,
        "migrate": bench_cli.cmd_migrate,
    }
    handlers[args.bench_command](args)


def cmd_cache(args) -> None:
    from repro.harness import runner
    from repro.harness.diskcache import DiskCache, cache_enabled

    if not cache_enabled():
        print("disk cache disabled (REPRO_DISK_CACHE=0)")
        return
    cache = DiskCache()
    if args.cache_command == "clear":
        removed = cache.clear()
        runner.clear_cache()
        print(f"removed {removed} cached result(s) from {cache.root}")
    elif args.cache_command == "prune":
        outcome = cache.prune(max_bytes=args.max_bytes,
                              dry_run=args.dry_run)
        if not args.dry_run:
            runner.clear_cache()
        verb = "would prune" if args.dry_run else "pruned"
        tail = ("would remain" if args.dry_run else "remain")
        print(f"{verb} {outcome['removed_stale']} stale-version and "
              f"{outcome['removed_current']} current-version entr(ies); "
              f"{outcome['bytes'] / 1024:.1f} KiB {tail} in {cache.root}")
    else:
        import os

        if not os.path.isdir(cache.root):
            if args.json:
                print("{}")
            else:
                print(f"cache: no cache directory at {cache.root} "
                      "(nothing cached yet)")
            return
        stats = cache.stats()
        if args.json:
            import json

            print(json.dumps(stats, indent=1, sort_keys=True))
            return
        if stats["entries"] == 0 and stats["stale_entries"] == 0:
            print(f"cache: empty at {cache.root} (nothing cached yet)")
            return
        rec, snap = stats["records"], stats["snapshots"]
        print(f"root          : {stats['root']}")
        print(f"code version  : {stats['version']}")
        print(f"entries       : {stats['entries']} (current version)")
        print(f"  records     : {rec['entries']} "
              f"({rec['bytes'] / 1024:.1f} KiB)")
        print(f"  snapshots   : {snap['entries']} "
              f"({snap['bytes'] / 1024:.1f} KiB)")
        print(f"stale entries : {stats['stale_entries']} (older versions)")
        print(f"size          : {stats['bytes'] / 1024:.1f} KiB")


def cmd_serve(args) -> None:
    from repro.fleet import DEFAULT_HOST, DEFAULT_PORT, serve

    raise SystemExit(serve(
        host=args.host or DEFAULT_HOST,
        port=DEFAULT_PORT if args.port is None else args.port,
        jobs=args.jobs, cache_dir=args.cache_dir,
        events_log=args.events_log))


def _submit_docs(args) -> List[dict]:
    from dataclasses import asdict

    docs = []
    for benchmark in args.submit_benchmarks:
        spec = RunSpec(
            benchmark=benchmark,
            heap_mult=args.heap_mult,
            coalloc=args.coalloc,
            monitoring=not args.no_monitoring,
            interval=args.interval,
            gc_plan=args.gc_plan,
            event=args.event,
            seed=args.seed,
            until_cycles=args.until_cycles,
        )
        docs.append(asdict(spec))
    return docs


def _fleet_client(args):
    from repro.fleet import FleetClient

    return FleetClient(args.url, timeout=args.timeout)


def _print_job(doc: dict) -> None:
    print(f"job {doc['job']}: {doc['state']} "
          f"({doc['completed']}/{doc['specs']} specs)"
          + (f" error: {doc['error']}" if doc.get("error") else ""))
    for row in doc.get("spec_states", ()):
        flags = []
        if row.get("coalesced"):
            flags.append("coalesced")
        if row.get("wall_s") is not None:
            flags.append(f"{row['wall_s']:.2f}s")
        if row.get("error"):
            flags.append(f"error: {row['error']}")
        tail = ("  (" + ", ".join(flags) + ")") if flags else ""
        print(f"  {row['state']:>9}  {row['benchmark']:<10} "
              f"{row['spec']}{tail}")


def cmd_submit(args) -> None:
    import json

    from repro.fleet import FleetClientError

    client = _fleet_client(args)
    try:
        doc = client.submit(_submit_docs(args),
                            leg_cycles=args.leg_cycles, wait=args.wait)
    except FleetClientError as exc:
        raise SystemExit(f"submit: {exc}")
    if args.json:
        print(json.dumps(doc, indent=1, sort_keys=True))
        return
    _print_job(doc)
    if doc.get("state") == "failed":
        raise SystemExit(1)


def cmd_jobs(args) -> None:
    import json

    from repro.fleet import FleetClientError

    client = _fleet_client(args)
    try:
        if args.job_id:
            doc = client.job(args.job_id, wait=args.wait)
            if args.json:
                print(json.dumps(doc, indent=1, sort_keys=True))
            else:
                _print_job(doc)
            return
        rows = client.jobs()
    except FleetClientError as exc:
        raise SystemExit(f"jobs: {exc}")
    if args.json:
        print(json.dumps(rows, indent=1, sort_keys=True))
        return
    if not rows:
        print("no jobs submitted yet")
        return
    for doc in rows:
        _print_job(doc)


def cmd_watch(args) -> None:
    from repro.fleet import FleetClientError, watch

    if args.from_log:
        try:
            state = watch.replay_file(args.from_log)
        except OSError as exc:
            raise SystemExit(f"watch: cannot read {args.from_log!r}: {exc}")
        print(watch.render(state, width=args.width))
        return
    client = _fleet_client(args)
    try:
        watch.watch_stream(client.events(backlog=not args.no_backlog),
                           width=args.width, raw_json=args.json)
    except FleetClientError as exc:
        raise SystemExit(f"watch: {exc}")
    except KeyboardInterrupt:
        pass


def main(argv: Optional[List[str]] = None) -> None:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description=("Reproduction of 'Online Optimizations Driven by "
                     "Hardware Performance Monitoring' (PLDI 2007)"))
    parser.add_argument("--version", action="version",
                        version=f"repro {_version()}")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the benchmark programs")

    def add_run_options(p) -> None:
        # Table 1 plus the adversarial probes (e.g. "phased", the
        # health observatory's phase-shift workload).
        p.add_argument("benchmark", choices=suite.extended_names())
        p.add_argument("--heap-mult", type=float, default=4.0,
                       help="heap as a multiple of the minimum (default 4)")
        p.add_argument("--coalloc", action="store_true",
                       help="enable HPM-guided co-allocation")
        p.add_argument("--no-monitoring", action="store_true",
                       help="disable event sampling")
        p.add_argument("--interval", default="auto",
                       choices=["25K", "50K", "100K", "auto"])
        p.add_argument("--gc-plan", default="genms",
                       choices=["genms", "gencopy"])
        p.add_argument("--event", default="L1D_MISS",
                       choices=["L1D_MISS", "L2_MISS", "DTLB_MISS"])
        p.add_argument("--seed", type=int, default=1)
        p.add_argument("--no-fastpath", action="store_true",
                       help="run the reference interpreter instead of the "
                            "translated fast path (same results, slower)")

    run_p = sub.add_parser("run", help="run one benchmark")
    add_run_options(run_p)
    run_p.add_argument("--until-cycles", type=int, default=None, metavar="N",
                       help="stop at the first scheduler boundary past N "
                            "cycles, record the truncated run, and leave a "
                            "checkpoint behind for --resume")
    run_p.add_argument("--checkpoint-every", type=int, default=None,
                       metavar="N",
                       help="capture a resumable checkpoint every N cycles "
                            "(absolute grid, stored in the result cache)")
    run_p.add_argument("--resume", action="store_true",
                       help="continue from the latest cached checkpoint of "
                            "this exact spec instead of starting at cycle 0 "
                            "(bit-identical to never having stopped)")
    run_p.add_argument("--trace", metavar="PATH", default=None,
                       help="write the telemetry trace (Chrome trace-event "
                            "JSON; '.jsonl' suffix selects JSONL)")
    run_p.add_argument("--metrics", action="store_true",
                       help="print the metrics registry after the run")
    run_p.add_argument("--prom", metavar="PATH", default=None,
                       help="write the metrics registry in Prometheus "
                            "text format")
    run_p.add_argument("--record", metavar="PATH", default=None,
                       help="export the portable run record (with its "
                            "provenance manifest) as JSON for `repro diff`")
    run_p.add_argument("--collapsed", metavar="PATH", default=None,
                       help="export the span trace as collapsed stacks "
                            "(flamegraph.pl / speedscope input, weighted "
                            "by simulated self-cycles)")

    tl_p = sub.add_parser("timeline",
                          help="run one benchmark, print a text timeline")
    add_run_options(tl_p)
    tl_p.add_argument("--width", type=int, default=72,
                      help="timeline width in columns (default 72)")
    tl_p.add_argument("--from", dest="from_trace", metavar="PATH",
                      default=None,
                      help="render a previously exported trace (JSON or "
                           "JSONL) instead of re-running the benchmark")
    tl_p.add_argument("--phases", action="store_true",
                      help="overlay the online phase segmentation (a "
                           "phase lane under the timeline plus the phase "
                           "table)")

    def positive_int(value: str) -> int:
        jobs = int(value)
        if jobs < 1:
            raise argparse.ArgumentTypeError(f"must be >= 1, got {jobs}")
        return jobs

    def add_jobs_option(p) -> None:
        p.add_argument("--jobs", type=positive_int, default=None, metavar="N",
                       help="worker processes for uncached runs (default: "
                            "REPRO_JOBS or the CPU count; 1 = serial)")
        p.add_argument("--progress", action="store_true",
                       help="stream fleet job events (queued/started/"
                            "finished/cache-hit, with an ETA) to stderr")
        p.add_argument("--progress-log", metavar="PATH", default=None,
                       help="append fleet job events to a JSONL event log")

    def add_figure_parser(name: str, help: str,
                          benchmarks: bool = False):
        """One registration path for every table/figure subcommand:
        all of them get ``--jobs/--progress/--progress-log`` (handlers
        that run a single simulation simply ignore the fan-out knobs),
        and the multi-benchmark ones get ``--benchmarks``."""
        fig_p = sub.add_parser(name, help=help)
        if benchmarks:
            fig_p.add_argument("--benchmarks", default="",
                               help="comma-separated subset "
                                    "(default: all 16)")
        add_jobs_option(fig_p)
        return fig_p

    for name in ("table2", "fig2", "fig3", "fig4", "fig5"):
        add_figure_parser(name, f"regenerate {name}", benchmarks=True)
    for name in ("table1", "fig6", "fig7", "fig8"):
        add_figure_parser(name, f"regenerate {name}")
    add_figure_parser("ablations", "run the ablations")

    audit_p = sub.add_parser(
        "audit", help="audit sampled-profile fidelity against the "
                      "simulator's exact miss attribution")
    audit_p.add_argument("benchmark", choices=suite.all_names())
    audit_p.add_argument("--intervals", default="25K,50K,100K",
                         help="comma-separated sampling intervals to sweep "
                              "(default 25K,50K,100K)")
    audit_p.add_argument("--seed", type=int, default=1)
    audit_p.add_argument("--top", type=positive_int, default=10,
                         metavar="N", help="hot-set size for the overlap "
                                           "coefficient (default 10)")
    audit_p.add_argument("--event", default="L1D_MISS",
                         choices=["L1D_MISS", "L2_MISS", "DTLB_MISS"])
    audit_p.add_argument("--coalloc", action="store_true",
                         help="audit with co-allocation enabled (default "
                              "off, the Figure 2 configuration)")
    audit_p.add_argument("--json", metavar="PATH", default=None,
                         help="also write the report as JSON")

    explain_p = sub.add_parser(
        "explain", help="print the justification chain behind an online "
                        "optimization decision (decision lineage)")
    add_run_options(explain_p)
    add_jobs_option(explain_p)
    source = explain_p.add_mutually_exclusive_group()
    source.add_argument("--from", dest="from_record", metavar="RECORD.json",
                        default=None,
                        help="explain a previously exported run record "
                             "(`repro run --record`) instead of re-running")
    source.add_argument("--fig8", action="store_true",
                        help="run the Figure 8 revert experiment (mid-run "
                             "gap injection) and explain its decisions")
    which = explain_p.add_mutually_exclusive_group()
    which.add_argument("--field", metavar="CLASS::FIELD", default=None,
                       help="latest decision touching this qualified field")
    which.add_argument("--revert", type=positive_int, metavar="N",
                       default=None, help="the N-th revert of the run "
                                          "(1-based)")
    which.add_argument("--decision", type=int, metavar="ID", default=None,
                       help="a specific entry id")
    explain_p.add_argument("--json", metavar="PATH", default=None,
                           help="write the full lineage document, "
                                "validation problems, and chain as JSON")
    explain_p.add_argument("--dot", metavar="PATH", default=None,
                           help="write the ledger as a Graphviz digraph "
                                "with the chain highlighted")

    doctor_p = sub.add_parser(
        "doctor", help="run-health report: online phase segmentation, "
                       "pathology detectors, ledger-backed evidence")
    add_run_options(doctor_p)
    doctor_p.add_argument("--from", dest="from_record",
                          metavar="RECORD.json", default=None,
                          help="diagnose a previously exported run record "
                               "(`repro run --record`) instead of "
                               "re-running")
    doctor_p.add_argument("--storm", action="store_true",
                          help="seed a revert storm (repeated bad-placement "
                               "experiments the feedback engine must "
                               "revert) before diagnosing; implies "
                               "--coalloc")
    doctor_p.add_argument("--storm-count", type=positive_int, default=4,
                          metavar="N",
                          help="experiments the storm seeds (default 4)")
    doctor_p.add_argument("--json", metavar="PATH", default=None,
                          help="write the verdict, full health report, "
                               "evidence problems, and justification "
                               "chains as JSON")

    diff_p = sub.add_parser(
        "diff", help="structured diff of two exported run records "
                     "(exit 1 when significantly different)")
    diff_p.add_argument("record_a", metavar="A.json")
    diff_p.add_argument("record_b", metavar="B.json")
    diff_p.add_argument("--threshold", type=float, default=0.01,
                        help="relative-delta significance threshold "
                             "(default 0.01)")
    diff_p.add_argument("--limit", type=positive_int, default=40,
                        metavar="N", help="max differences to print")

    cache_p = sub.add_parser("cache",
                             help="inspect, prune, or clear the persistent "
                                  "result cache")
    cache_p.add_argument("cache_command", choices=["stats", "clear", "prune"])
    cache_p.add_argument("--max-bytes", type=int, default=None, metavar="N",
                         help="prune: evict oldest current-version entries "
                              "until the cache fits in N bytes (stale code "
                              "versions are always removed)")
    cache_p.add_argument("--dry-run", action="store_true",
                         help="prune: report what would be removed without "
                              "deleting anything")
    cache_p.add_argument("--json", action="store_true",
                         help="stats: print the raw stats document as JSON")

    bench_p = sub.add_parser(
        "bench", help="host-side performance observatory: run the "
                      "registered benchmark cases, track history, "
                      "score regressions, self-profile")
    bench_sub = bench_p.add_subparsers(dest="bench_command", required=True)

    from repro.bench.history import DEFAULT_HISTORY

    def add_bench_history_option(p) -> None:
        p.add_argument("--history", metavar="PATH", default=DEFAULT_HISTORY,
                       help=f"bench trajectory file "
                            f"(default {DEFAULT_HISTORY})")

    def add_bench_exec_options(p) -> None:
        p.add_argument("cases", nargs="*", metavar="CASE",
                       help="case names (see `bench list`)")
        p.add_argument("--all", action="store_true",
                       help="run every registered case")
        p.add_argument("--param", action="append", metavar="KEY=VALUE",
                       help="override a case parameter (value parsed as "
                            "JSON when possible; repeatable)")
        p.add_argument("--repeats", type=positive_int, default=None,
                       metavar="N", help="timed repetitions per case "
                                         "(default: per-case)")
        p.add_argument("--warmup", type=int, default=None, metavar="N",
                       help="discarded warmup runs per case (default: "
                            "per-case)")
        p.add_argument("--out-dir", metavar="DIR", default=None,
                       help="directory for BENCH_<case>.json artifacts "
                            "(default: current directory)")
        p.add_argument("--no-artifacts", action="store_true",
                       help="skip writing BENCH_<case>.json artifacts")
        p.add_argument("--no-history", action="store_true",
                       help="do not append this run to the history")
        p.add_argument("--json", metavar="PATH", default=None,
                       help="write the full run report as JSON")
        add_bench_history_option(p)

    bench_sub.add_parser("list", help="list the registered cases, their "
                                      "gates, and primary metrics")

    bench_run_p = bench_sub.add_parser(
        "run", help="execute cases with warmup/repeats; exit 1 on any "
                    "gate failure")
    add_bench_exec_options(bench_run_p)

    bench_hist_p = bench_sub.add_parser(
        "history", help="show the recorded bench trajectory")
    bench_hist_p.add_argument("--case", metavar="NAME", default=None,
                              help="restrict to one case")
    bench_hist_p.add_argument("--limit", type=positive_int, default=20,
                              metavar="N",
                              help="show the last N entries (default 20)")
    bench_hist_p.add_argument("--json", action="store_true",
                              help="print the raw entries as JSON")
    add_bench_history_option(bench_hist_p)

    bench_cmp_p = bench_sub.add_parser(
        "compare", help="score a run against the baseline window; exit 1 "
                        "on a regressed or invalid verdict")
    add_bench_exec_options(bench_cmp_p)
    bench_cmp_p.add_argument("--from", dest="from_report",
                             metavar="REPORT.json", default=None,
                             help="score a previously written `bench run "
                                  "--json` report instead of re-running")
    bench_cmp_p.add_argument("--window", type=positive_int, default=5,
                             metavar="N",
                             help="baseline window: median of the last N "
                                  "compatible entries (default 5)")
    bench_cmp_p.add_argument("--threshold", type=float, default=None,
                             help="override every case's relative verdict "
                                  "threshold")
    bench_cmp_p.add_argument("--baseline-code", metavar="VERSION",
                             default=None,
                             help="only accept baseline entries from this "
                                  "code version")

    bench_prof_p = bench_sub.add_parser(
        "profile", help="run one case under cProfile: subsystem wall-time "
                        "attribution + collapsed stacks")
    bench_prof_p.add_argument("case", metavar="CASE")
    bench_prof_p.add_argument("--param", action="append",
                              metavar="KEY=VALUE",
                              help="override a case parameter (repeatable)")
    bench_prof_p.add_argument("--warmup", type=int, default=0, metavar="N",
                              help="discarded warmup runs before profiling")
    bench_prof_p.add_argument("--top", type=positive_int, default=12,
                              metavar="N",
                              help="subsystem rows to print (default 12)")
    bench_prof_p.add_argument("--collapsed", metavar="PATH", default=None,
                              help="write collapsed stacks (flamegraph.pl "
                                   "/ speedscope input)")
    bench_prof_p.add_argument("--json", metavar="PATH", default=None,
                              help="write the attribution report as JSON")

    bench_mig_p = bench_sub.add_parser(
        "migrate", help="seed the history from legacy flat BENCH_*.json "
                        "artifacts (one-shot shim)")
    bench_mig_p.add_argument("paths", nargs="*", metavar="BENCH_*.json",
                             help="artifacts to migrate (default: "
                                  "BENCH_*.json in . and results/)")
    add_bench_history_option(bench_mig_p)

    serve_p = sub.add_parser(
        "serve", help="run the fleet daemon: an HTTP/JSON job queue over "
                      "the engine with live /events and /metrics")
    serve_p.add_argument("--host", default=None,
                         help="bind address (default 127.0.0.1)")
    serve_p.add_argument("--port", type=int, default=None,
                         help="bind port (default 8077; 0 = ephemeral)")
    serve_p.add_argument("--jobs", type=positive_int, default=None,
                         metavar="N",
                         help="worker processes per batch (default: "
                              "REPRO_JOBS or the CPU count)")
    serve_p.add_argument("--cache-dir", metavar="DIR", default=None,
                         help="disk-cache root for this daemon (default: "
                              "REPRO_CACHE_DIR or results/.cache)")
    serve_p.add_argument("--events-log", metavar="PATH", default=None,
                         help="tee every fleet event to a JSONL file "
                              "(replayable with `repro watch --from`)")

    def add_fleet_client_options(p) -> None:
        p.add_argument("--url", metavar="URL", default=None,
                       help="daemon base URL (default http://127.0.0.1:8077)")
        p.add_argument("--timeout", type=float, default=30.0, metavar="S",
                       help="per-request timeout in seconds (default 30)")
        p.add_argument("--json", action="store_true",
                       help="print raw JSON instead of the summary")

    submit_p = sub.add_parser(
        "submit", help="submit a batch of benchmarks to the fleet daemon")
    submit_p.add_argument("submit_benchmarks", nargs="+", metavar="BENCH",
                          choices=suite.extended_names(),
                          help="benchmarks to run (one spec each)")
    submit_p.add_argument("--heap-mult", type=float, default=4.0)
    submit_p.add_argument("--coalloc", action="store_true")
    submit_p.add_argument("--no-monitoring", action="store_true")
    submit_p.add_argument("--interval", default="auto",
                          choices=["25K", "50K", "100K", "auto"])
    submit_p.add_argument("--gc-plan", default="genms",
                          choices=["genms", "gencopy"])
    submit_p.add_argument("--event", default="L1D_MISS",
                          choices=["L1D_MISS", "L2_MISS", "DTLB_MISS"])
    submit_p.add_argument("--seed", type=int, default=1)
    submit_p.add_argument("--until-cycles", type=int, default=None,
                          metavar="N")
    submit_p.add_argument("--leg-cycles", type=positive_int, default=None,
                          metavar="N",
                          help="shard each run into checkpoint legs of N "
                               "cycles (run_specs_sharded)")
    submit_p.add_argument("--wait", action="store_true",
                          help="long-poll until the job is terminal; exit "
                               "1 if it failed")
    add_fleet_client_options(submit_p)

    jobs_p = sub.add_parser(
        "jobs", help="list the fleet daemon's jobs (or show one)")
    jobs_p.add_argument("job_id", nargs="?", default=None, metavar="JOB",
                        help="job id for per-spec detail (default: all)")
    jobs_p.add_argument("--wait", action="store_true",
                        help="with JOB: long-poll until it is terminal")
    add_fleet_client_options(jobs_p)

    watch_p = sub.add_parser(
        "watch", help="live terminal dashboard over the fleet event "
                      "stream (or replay a recorded one)")
    watch_p.add_argument("--from", dest="from_log", metavar="EVENTS.jsonl",
                         default=None,
                         help="replay a recorded event stream (`serve "
                              "--events-log` / `--progress-log`) offline "
                              "instead of connecting")
    watch_p.add_argument("--no-backlog", action="store_true",
                         help="skip the daemon's replayed event history; "
                              "show only new events")
    watch_p.add_argument("--width", type=positive_int, default=100,
                         help="dashboard width in columns (default 100)")
    add_fleet_client_options(watch_p)

    dis_p = sub.add_parser("disasm", help="disassemble a benchmark method")
    dis_p.add_argument("benchmark", choices=suite.all_names())
    dis_p.add_argument("method", help="qualified name, e.g. App.scan")
    dis_p.add_argument("--baseline", action="store_true",
                       help="use the baseline compiler instead of opt")

    args = parser.parse_args(argv)
    if hasattr(args, "benchmarks"):
        args.benchmark_names = _benchmark_list(args.benchmarks)

    progress_sink = None
    if getattr(args, "progress", False) or getattr(args, "progress_log",
                                                   None):
        from repro.harness import engine

        sinks = []
        if args.progress:
            sinks.append(engine.StderrProgress())
        if args.progress_log:
            try:
                sinks.append(engine.JsonlProgress(args.progress_log))
            except OSError as exc:
                raise SystemExit(f"cannot open progress log "
                                 f"{args.progress_log!r}: {exc}")
        progress_sink = engine.TeeProgress(*sinks)
        engine.set_default_progress(progress_sink)

    handlers = {
        "list": cmd_list, "run": cmd_run, "timeline": cmd_timeline,
        "audit": cmd_audit, "diff": cmd_diff, "explain": cmd_explain,
        "doctor": cmd_doctor,
        "table1": cmd_table1, "table2": cmd_table2,
        "fig2": cmd_fig2, "fig3": cmd_fig3, "fig4": cmd_fig4,
        "fig5": cmd_fig5, "fig6": cmd_fig6, "fig7": cmd_fig7,
        "fig8": cmd_fig8, "ablations": cmd_ablations,
        "disasm": cmd_disasm, "cache": cmd_cache, "bench": cmd_bench,
        "serve": cmd_serve, "submit": cmd_submit, "jobs": cmd_jobs,
        "watch": cmd_watch,
    }
    try:
        handlers[args.command](args)
    finally:
        if progress_sink is not None:
            from repro.harness import engine

            engine.set_default_progress(None)
            progress_sink.close()


if __name__ == "__main__":
    main()
