"""Command-line interface: ``python -m repro <command>``.

Commands
--------
list                      the Table 1 benchmarks
run BENCH [options]       run one benchmark, print the result summary
timeline BENCH [options]  run one benchmark, print a text trace timeline
table1 | table2           regenerate a table
fig2 .. fig8              regenerate a figure
ablations                 run the ablation experiments
cache stats | clear       inspect or drop the persistent result cache

Table/figure commands accept ``--jobs N`` to fan uncached runs across N
worker processes (default: ``REPRO_JOBS`` or the CPU count; ``--jobs 1``
runs serially in-process).  Results are bit-identical either way.

Examples::

    python -m repro run db --heap-mult 4 --coalloc --trace out.json
    python -m repro timeline db --coalloc
    python -m repro fig4 --benchmarks db,pseudojbb,compress --jobs 4
    python -m repro fig6
    python -m repro cache stats
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.harness import experiments as ex
from repro.harness import report
from repro.harness.runner import RunSpec, execute
from repro.workloads import suite


def _version() -> str:
    try:
        from importlib.metadata import version

        return version("repro")
    except Exception:
        import repro

        return getattr(repro, "__version__", "unknown")


def _benchmark_list(value: Optional[str]) -> Optional[List[str]]:
    if not value:
        return None
    names = [v.strip() for v in value.split(",") if v.strip()]
    for name in names:
        if name not in suite.BENCHMARKS:
            raise SystemExit(f"unknown benchmark {name!r}; "
                             f"known: {', '.join(suite.all_names())}")
    return names


def cmd_list(args) -> None:
    for row in ex.table1():
        print(f"{row.name:10s} {row.description}")


def _run_spec(args) -> RunSpec:
    return RunSpec(
        benchmark=args.benchmark,
        heap_mult=args.heap_mult,
        coalloc=args.coalloc,
        monitoring=not args.no_monitoring,
        interval=args.interval,
        gc_plan=args.gc_plan,
        event=args.event,
        seed=args.seed,
    )


def cmd_run(args) -> None:
    from repro.telemetry import Telemetry
    from repro.telemetry.export import write_chrome_trace, write_jsonl

    spec = _run_spec(args)
    telemetry = Telemetry() if (args.trace or args.metrics) else None
    result = execute(spec, telemetry=telemetry,
                     fastpath=False if args.no_fastpath else None)
    print(f"benchmark            : {result.program}")
    print(f"cycles               : {result.cycles:,}")
    print(f"instructions         : {result.instructions:,}")
    print(f"L1D misses           : {result.counters['L1D_MISS']:,} "
          f"(rate {result.l1_miss_rate:.4f})")
    print(f"L2 misses            : {result.counters['L2_MISS']:,}")
    print(f"DTLB misses          : {result.counters['DTLB_MISS']:,}")
    print(f"GC                   : {result.gc_stats.summary()}")
    print(f"cycles (app/gc/mon)  : {result.app_cycles:,} / "
          f"{result.gc_cycles:,} / {result.monitoring_cycles:,}")
    if result.monitor_summary:
        print(f"monitoring           : {result.monitor_summary}")
    else:
        print("monitoring           : disabled")
    if telemetry is not None and args.trace:
        metadata = {"benchmark": spec.benchmark, "seed": spec.seed,
                    "gc_plan": spec.gc_plan, "coalloc": spec.coalloc}
        try:
            if args.trace.endswith(".jsonl"):
                write_jsonl(args.trace, telemetry.tracer, telemetry.metrics)
            else:
                write_chrome_trace(args.trace, telemetry.tracer,
                                   telemetry.metrics, metadata)
        except OSError as exc:
            raise SystemExit(f"cannot write trace to {args.trace!r}: {exc}")
        print(f"trace                : {args.trace} "
              f"({len(telemetry.tracer.spans)} spans; open in Perfetto)")
    if telemetry is not None and args.metrics:
        print("metrics:")
        for line in telemetry.metrics.render().splitlines():
            print(f"  {line}")


def cmd_timeline(args) -> None:
    from repro.telemetry import Telemetry
    from repro.telemetry.export import format_timeline

    telemetry = Telemetry()
    result = execute(_run_spec(args), telemetry=telemetry,
                     fastpath=False if args.no_fastpath else None)
    print(format_timeline(telemetry.tracer, total_cycles=result.cycles,
                          width=args.width))


def cmd_table1(args) -> None:
    print(report.format_table1(ex.table1()))


def cmd_table2(args) -> None:
    print(report.format_table2(ex.table2(args.benchmark_names,
                                         jobs=args.jobs)))


def cmd_fig2(args) -> None:
    print(report.format_fig2(ex.fig2_sampling_overhead(args.benchmark_names,
                                                       jobs=args.jobs)))


def cmd_fig3(args) -> None:
    print(report.format_fig3(ex.fig3_coalloc_counts(args.benchmark_names,
                                                    jobs=args.jobs)))


def cmd_fig4(args) -> None:
    print(report.format_fig4(ex.fig4_l1_reduction(args.benchmark_names,
                                                  jobs=args.jobs)))


def cmd_fig5(args) -> None:
    print(report.format_fig5(ex.fig5_exec_time(args.benchmark_names,
                                               jobs=args.jobs)))


def cmd_fig6(args) -> None:
    print(report.format_fig6(ex.fig6_gencopy_vs_genms(jobs=args.jobs)))


def cmd_fig7(args) -> None:
    print(report.format_fig7(ex.fig7_db_timeline()))


def cmd_fig8(args) -> None:
    print(report.format_fig8(ex.fig8_revert()))


def cmd_disasm(args) -> None:
    from repro.core.interest import analyze_compiled_method
    from repro.jit.baseline import compile_baseline
    from repro.jit.disasm import format_compiled_method
    from repro.jit.opt import compile_opt

    workload = suite.build(args.benchmark)
    wanted = args.method
    method = next((m for m in workload.program.all_methods()
                   if m.qualified_name == wanted), None)
    if method is None:
        known = ", ".join(sorted(m.qualified_name
                                 for m in workload.program.all_methods()
                                 if not m.name.startswith("cold")))
        raise SystemExit(f"no method {wanted!r}; try one of: {known}")
    cm = (compile_baseline(method) if args.baseline
          else compile_opt(method))
    cm.code_addr = 0x0800_0000  # nominal base for the listing
    interest = analyze_compiled_method(cm)
    print(format_compiled_method(cm, interest))


def cmd_ablations(args) -> None:
    from repro.harness import ablations as ab

    ev = ab.event_driver_ablation(jobs=args.jobs)
    print(f"event-driver ablation ({ev.benchmark}):")
    for event, (cycles, l1, co) in ev.by_event.items():
        print(f"  {event:10s} cycles={cycles:,} coallocated={co}")
    oracle = ab.static_oracle_ablation(jobs=args.jobs)
    print(f"\nstatic-oracle ablation ({oracle.benchmark}):")
    print(f"  online speedup {oracle.online_speedup:.1%}, "
          f"oracle speedup {oracle.oracle_speedup:.1%}")
    for name in ("compress", "db"):
        pf = ab.prefetcher_ablation(name)
        print(f"\nprefetcher off ({name}): "
              f"+{pf.slowdown_without:.1%} time, "
              f"L2 misses {pf.l2_misses_with:,} -> {pf.l2_misses_without:,}")


def cmd_cache(args) -> None:
    from repro.harness import runner
    from repro.harness.diskcache import DiskCache, cache_enabled

    if not cache_enabled():
        print("disk cache disabled (REPRO_DISK_CACHE=0)")
        return
    cache = DiskCache()
    if args.cache_command == "clear":
        removed = cache.clear()
        runner.clear_cache()
        print(f"removed {removed} cached result(s) from {cache.root}")
    else:
        stats = cache.stats()
        print(f"root          : {stats['root']}")
        print(f"code version  : {stats['version']}")
        print(f"entries       : {stats['entries']} (current version)")
        print(f"stale entries : {stats['stale_entries']} (older versions)")
        print(f"size          : {stats['bytes'] / 1024:.1f} KiB")


def main(argv: Optional[List[str]] = None) -> None:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description=("Reproduction of 'Online Optimizations Driven by "
                     "Hardware Performance Monitoring' (PLDI 2007)"))
    parser.add_argument("--version", action="version",
                        version=f"repro {_version()}")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the benchmark programs")

    def add_run_options(p) -> None:
        p.add_argument("benchmark", choices=suite.all_names())
        p.add_argument("--heap-mult", type=float, default=4.0,
                       help="heap as a multiple of the minimum (default 4)")
        p.add_argument("--coalloc", action="store_true",
                       help="enable HPM-guided co-allocation")
        p.add_argument("--no-monitoring", action="store_true",
                       help="disable event sampling")
        p.add_argument("--interval", default="auto",
                       choices=["25K", "50K", "100K", "auto"])
        p.add_argument("--gc-plan", default="genms",
                       choices=["genms", "gencopy"])
        p.add_argument("--event", default="L1D_MISS",
                       choices=["L1D_MISS", "L2_MISS", "DTLB_MISS"])
        p.add_argument("--seed", type=int, default=1)
        p.add_argument("--no-fastpath", action="store_true",
                       help="run the reference interpreter instead of the "
                            "translated fast path (same results, slower)")

    run_p = sub.add_parser("run", help="run one benchmark")
    add_run_options(run_p)
    run_p.add_argument("--trace", metavar="PATH", default=None,
                       help="write the telemetry trace (Chrome trace-event "
                            "JSON; '.jsonl' suffix selects JSONL)")
    run_p.add_argument("--metrics", action="store_true",
                       help="print the metrics registry after the run")

    tl_p = sub.add_parser("timeline",
                          help="run one benchmark, print a text timeline")
    add_run_options(tl_p)
    tl_p.add_argument("--width", type=int, default=72,
                      help="timeline width in columns (default 72)")

    def positive_int(value: str) -> int:
        jobs = int(value)
        if jobs < 1:
            raise argparse.ArgumentTypeError(f"must be >= 1, got {jobs}")
        return jobs

    def add_jobs_option(p) -> None:
        p.add_argument("--jobs", type=positive_int, default=None, metavar="N",
                       help="worker processes for uncached runs (default: "
                            "REPRO_JOBS or the CPU count; 1 = serial)")

    for name in ("table2", "fig2", "fig3", "fig4", "fig5"):
        fig_p = sub.add_parser(name, help=f"regenerate {name}")
        fig_p.add_argument("--benchmarks", default="",
                           help="comma-separated subset (default: all 16)")
        add_jobs_option(fig_p)
    for name in ("table1", "fig6", "fig7", "fig8", "ablations"):
        fig_p = sub.add_parser(name, help=f"regenerate {name}"
                               if name != "ablations" else "run the ablations")
        if name in ("fig6", "ablations"):
            add_jobs_option(fig_p)

    cache_p = sub.add_parser("cache",
                             help="inspect or clear the persistent "
                                  "result cache")
    cache_p.add_argument("cache_command", choices=["stats", "clear"])

    dis_p = sub.add_parser("disasm", help="disassemble a benchmark method")
    dis_p.add_argument("benchmark", choices=suite.all_names())
    dis_p.add_argument("method", help="qualified name, e.g. App.scan")
    dis_p.add_argument("--baseline", action="store_true",
                       help="use the baseline compiler instead of opt")

    args = parser.parse_args(argv)
    if hasattr(args, "benchmarks"):
        args.benchmark_names = _benchmark_list(args.benchmarks)

    handlers = {
        "list": cmd_list, "run": cmd_run, "timeline": cmd_timeline,
        "table1": cmd_table1, "table2": cmd_table2,
        "fig2": cmd_fig2, "fig3": cmd_fig3, "fig4": cmd_fig4,
        "fig5": cmd_fig5, "fig6": cmd_fig6, "fig7": cmd_fig7,
        "fig8": cmd_fig8, "ablations": cmd_ablations,
        "disasm": cmd_disasm, "cache": cmd_cache,
    }
    handlers[args.command](args)


if __name__ == "__main__":
    main()
